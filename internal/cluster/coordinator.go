package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bimodal/internal/spec"
	"bimodal/internal/telemetry"
)

// Config tunes a Coordinator. The zero value is usable; every field has a
// production default.
type Config struct {
	// TTL is the worker liveness window: a worker that neither heartbeats
	// nor pulls for this long is declared dead and its cells are requeued.
	// Default 15s.
	TTL time.Duration
	// ReapEvery is the liveness sweep interval. Default TTL/3.
	ReapEvery time.Duration
	// PollWait bounds how long an idle pull request is held open before
	// the coordinator answers 204 (long-poll). Default 10s.
	PollWait time.Duration
	// MaxAttempts caps how many workers a cell may be handed to before the
	// coordinator gives up and fails it (each requeue after a worker death
	// burns one attempt). Default 3.
	MaxAttempts int
	// Metrics receives the coordinator's instrumentation.
	// Default telemetry.Default.
	Metrics *telemetry.Registry
	// Now is the clock (a test seam for deterministic reaper tests).
	// Default time.Now. The cluster layer is outside the simulator's
	// determinism boundary — placement never affects result bytes.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.TTL <= 0 {
		c.TTL = 15 * time.Second
	}
	if c.ReapEvery <= 0 {
		c.ReapEvery = c.TTL / 3
	}
	if c.PollWait <= 0 {
		c.PollWait = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.Default
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// taskResult is what a worker reported back for one cell.
type taskResult struct {
	blob []byte
	err  error
}

// task is one cell in flight through the cluster.
type task struct {
	id   string
	rs   spec.RunSpec
	hash string
	// owner is the worker whose queue holds the task (pending) or that is
	// running it. Empty while orphaned (no workers registered).
	owner string
	// running flips when a worker pulls the task.
	running bool
	// attempts counts workers the task has been handed to.
	attempts int
	// result receives exactly one send (buffered so a report never blocks
	// on a caller that already gave up).
	result chan taskResult
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id       string
	name     string
	queue    []*task          // pending cells placed on this worker
	running  map[string]*task // pulled, awaiting report
	lastSeen time.Time
	// waiters are parked pull requests, woken (FIFO) when work arrives.
	waiters []chan *task
	qGauge  *telemetry.Gauge
}

// depth is the worker's total outstanding load (queued + running).
func (w *workerState) depth() int { return len(w.queue) + len(w.running) }

// Coordinator shards sweep cells across registered workers. It implements
// service.Dispatcher, so a service.Server configured with one transparently
// fans cells out to the fleet; with no workers joined, cells wait (they are
// "orphans") until one arrives. Create with New, release with Close.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	ring    ring
	workers map[string]*workerState
	tasks   map[string]*task // pending + running, by task ID
	orphans []*task          // cells with no worker to sit on
	seq     int              // task ID source
	wseq    int              // worker ID source
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup

	mWorkers     *telemetry.Gauge
	mJoined      *telemetry.Counter
	mDead        *telemetry.Counter
	mDispatched  *telemetry.Counter
	mCompleted   *telemetry.Counter
	mStolen      *telemetry.Counter
	mRequeued    *telemetry.Counter
	mFailed      *telemetry.Counter
	mLateReports *telemetry.Counter
}

// New builds a Coordinator and starts its liveness reaper.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		workers: map[string]*workerState{},
		tasks:   map[string]*task{},
		stop:    make(chan struct{}),

		mWorkers:     cfg.Metrics.Gauge("bimodal_cluster_workers"),
		mJoined:      cfg.Metrics.Counter("bimodal_cluster_workers_joined_total"),
		mDead:        cfg.Metrics.Counter("bimodal_cluster_workers_dead_total"),
		mDispatched:  cfg.Metrics.Counter("bimodal_cluster_cells_dispatched_total"),
		mCompleted:   cfg.Metrics.Counter("bimodal_cluster_cells_completed_total"),
		mStolen:      cfg.Metrics.Counter("bimodal_cluster_cells_stolen_total"),
		mRequeued:    cfg.Metrics.Counter("bimodal_cluster_cells_requeued_total"),
		mFailed:      cfg.Metrics.Counter("bimodal_cluster_cells_failed_total"),
		mLateReports: cfg.Metrics.Counter("bimodal_cluster_late_reports_total"),
	}
	c.wg.Add(1)
	go c.reapLoop()
	return c
}

// Close stops the reaper and fails every outstanding cell. Parked pull
// requests are released empty-handed.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	for _, t := range c.tasks {
		t.result <- taskResult{err: fmt.Errorf("cluster: coordinator closed")}
	}
	c.tasks = map[string]*task{}
	c.orphans = nil
	for _, w := range c.workers {
		w.queue = nil
		w.running = map[string]*task{}
		for _, ch := range w.waiters {
			close(ch)
		}
		w.waiters = nil
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// RunCell implements service.Dispatcher: it enqueues the cell on the ring
// owner's queue and blocks until a worker reports the result bytes, the
// cell exhausts its attempts, or ctx ends. The returned bytes are exactly
// what the executing worker marshaled — the coordinator never re-encodes
// them, which is what keeps merged sweeps byte-identical across
// placements.
func (c *Coordinator) RunCell(ctx context.Context, rs spec.RunSpec, hash string) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: coordinator closed")
	}
	c.seq++
	t := &task{
		id:     fmt.Sprintf("task-%06d", c.seq),
		rs:     rs,
		hash:   hash,
		result: make(chan taskResult, 1),
	}
	c.tasks[t.id] = t
	c.placeLocked(t)
	c.mu.Unlock()

	select {
	case r := <-t.result:
		return r.blob, r.err
	case <-ctx.Done():
		c.abandon(t)
		return nil, ctx.Err()
	}
}

// abandon withdraws a task whose caller gave up. A pending task leaves
// its queue; a running task stays with its worker, whose eventual report
// is dropped as late.
func (c *Coordinator) abandon(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, live := c.tasks[t.id]; !live {
		return
	}
	delete(c.tasks, t.id)
	if t.running {
		if w := c.workers[t.owner]; w != nil {
			delete(w.running, t.id)
			w.qGauge.Set(int64(w.depth()))
		}
		return
	}
	if t.owner == "" {
		c.orphans = removeTask(c.orphans, t)
		return
	}
	if w := c.workers[t.owner]; w != nil {
		w.queue = removeTask(w.queue, t)
		w.qGauge.Set(int64(w.depth()))
	}
}

// placeLocked assigns a pending task to the ring owner of its spec hash,
// waking a parked pull if one is available. With an empty ring the task
// joins the orphan list until a worker registers.
func (c *Coordinator) placeLocked(t *task) {
	t.running = false
	owner := c.ring.owner(t.hash)
	if owner == "" {
		t.owner = ""
		c.orphans = append(c.orphans, t)
		return
	}
	t.owner = owner
	w := c.workers[owner]
	w.queue = append(w.queue, t)
	w.qGauge.Set(int64(w.depth()))
	c.wakeLocked(w)
}

// wakeLocked hands queued work to parked pulls. The owner's own waiters
// drain first; remaining work then goes to any other parked worker (an
// enqueue-time steal), so no worker idles while a peer's queue is
// non-empty.
func (c *Coordinator) wakeLocked(w *workerState) {
	for len(w.queue) > 0 && len(w.waiters) > 0 {
		ch := w.waiters[0]
		w.waiters = w.waiters[1:]
		ch <- c.takeLocked(w, w)
	}
	if len(w.queue) == 0 {
		return
	}
	for _, other := range c.workers {
		if other == w {
			continue
		}
		for len(w.queue) > 0 && len(other.waiters) > 0 {
			ch := other.waiters[0]
			other.waiters = other.waiters[1:]
			ch <- c.takeLocked(other, w)
		}
		if len(w.queue) == 0 {
			return
		}
	}
}

// takeLocked moves the head of victim's queue into taker's running set
// and returns it. A cross-worker take is counted as a steal.
func (c *Coordinator) takeLocked(taker, victim *workerState) *task {
	t := victim.queue[0]
	victim.queue = victim.queue[1:]
	t.owner = taker.id
	t.running = true
	t.attempts++
	taker.running[t.id] = t
	taker.lastSeen = c.cfg.Now()
	victim.qGauge.Set(int64(victim.depth()))
	taker.qGauge.Set(int64(taker.depth()))
	c.mDispatched.Inc()
	if taker != victim {
		c.mStolen.Inc()
	}
	return t
}

// Join registers a worker and returns its ID plus the liveness window it
// must heartbeat within. Orphaned cells are re-placed immediately.
func (c *Coordinator) Join(name string) (id string, ttl time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", 0, fmt.Errorf("cluster: coordinator closed")
	}
	c.wseq++
	id = fmt.Sprintf("worker-%04d", c.wseq)
	w := &workerState{
		id:       id,
		name:     name,
		running:  map[string]*task{},
		lastSeen: c.cfg.Now(),
		qGauge:   c.cfg.Metrics.Gauge(fmt.Sprintf("bimodal_cluster_queue_depth{worker=%q}", id)),
	}
	c.workers[id] = w
	c.ring.add(id)
	c.mJoined.Inc()
	c.mWorkers.Set(int64(len(c.workers)))
	orphans := c.orphans
	c.orphans = nil
	for _, t := range orphans {
		c.placeLocked(t)
	}
	return id, c.cfg.TTL, nil
}

// Heartbeat refreshes a worker's liveness. ErrUnknownWorker tells a
// reaped worker to rejoin under a fresh ID.
func (c *Coordinator) Heartbeat(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil {
		return ErrUnknownWorker
	}
	w.lastSeen = c.cfg.Now()
	return nil
}

// ErrUnknownWorker marks calls naming a worker the coordinator does not
// know — never joined, left, or declared dead. The HTTP layer maps it to
// 410 worker_gone.
var ErrUnknownWorker = fmt.Errorf("cluster: unknown worker")

// Pull hands the worker its next cell. Order: the worker's own queue,
// then a steal from the most-loaded peer's queue, then parking for up to
// the coordinator's PollWait (or until ctx ends) in case work arrives.
// A nil task with nil error means "nothing available, poll again".
func (c *Coordinator) Pull(ctx context.Context, id string) (*Task, error) {
	c.mu.Lock()
	w := c.workers[id]
	if w == nil || c.closed {
		c.mu.Unlock()
		return nil, ErrUnknownWorker
	}
	w.lastSeen = c.cfg.Now()
	if t := c.pullLocked(w); t != nil {
		c.mu.Unlock()
		return exportTask(t), nil
	}
	ch := make(chan *task, 1)
	w.waiters = append(w.waiters, ch)
	c.mu.Unlock()

	wait := time.NewTimer(c.cfg.PollWait)
	defer wait.Stop()
	select {
	case t, ok := <-ch:
		if !ok {
			return nil, ErrUnknownWorker // reaped or closed while parked
		}
		return exportTask(t), nil
	case <-wait.C:
	case <-ctx.Done():
	case <-c.stop:
	}
	// Timed out or canceled: withdraw the waiter; lose the race gracefully
	// if a task was handed over at the same moment.
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur := c.workers[id]; cur == w {
		w.waiters = removeWaiter(w.waiters, ch)
	}
	select {
	case t, ok := <-ch:
		if ok && t != nil {
			return exportTask(t), nil
		}
	default:
	}
	return nil, ctx.Err()
}

// pullLocked dequeues work for w: own queue first, else the head of the
// most-loaded peer queue (work stealing).
func (c *Coordinator) pullLocked(w *workerState) *task {
	if len(w.queue) > 0 {
		return c.takeLocked(w, w)
	}
	var victim *workerState
	for _, other := range c.workers {
		if other == w || len(other.queue) == 0 {
			continue
		}
		if victim == nil || other.depth() > victim.depth() ||
			(other.depth() == victim.depth() && other.id < victim.id) {
			victim = other
		}
	}
	if victim == nil {
		return nil
	}
	return c.takeLocked(w, victim)
}

// Report delivers a worker's result for a task. Late or duplicate reports
// — the task finished elsewhere after a requeue, or the caller abandoned
// it — are dropped idempotently: reporting is always safe.
func (c *Coordinator) Report(workerID, taskID string, blob []byte, workErr error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[workerID]; w != nil {
		w.lastSeen = c.cfg.Now()
	}
	t := c.tasks[taskID]
	if t == nil || !t.running || t.owner != workerID {
		c.mLateReports.Inc()
		return
	}
	delete(c.tasks, taskID)
	if w := c.workers[workerID]; w != nil {
		delete(w.running, taskID)
		w.qGauge.Set(int64(w.depth()))
	}
	c.mCompleted.Inc()
	t.result <- taskResult{blob: blob, err: workErr}
}

// Leave deregisters a worker cleanly, requeueing anything it still holds
// (without burning an attempt — a clean leave is not a failure).
func (c *Coordinator) Leave(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil {
		return ErrUnknownWorker
	}
	c.dropWorkerLocked(w, false)
	return nil
}

// reapLoop periodically declares workers dead after TTL of silence.
func (c *Coordinator) reapLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.ReapEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.reapOnce()
		}
	}
}

// reapOnce requeues the cells of every worker whose liveness window has
// lapsed. Requeued in-flight cells burn one attempt; a cell over the
// attempt budget fails instead of bouncing between dying workers forever.
func (c *Coordinator) reapOnce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := c.cfg.Now().Add(-c.cfg.TTL)
	for _, w := range c.workers {
		if w.lastSeen.After(deadline) {
			continue
		}
		c.mDead.Inc()
		c.dropWorkerLocked(w, true)
	}
}

// dropWorkerLocked removes a worker and redistributes its cells. Every
// in-flight cell moved back to pending counts as a requeue; died
// additionally burns an attempt per in-flight cell (a reap is a failure,
// a voluntary leave is not) and enforces the attempt budget.
func (c *Coordinator) dropWorkerLocked(w *workerState, died bool) {
	delete(c.workers, w.id)
	c.ring.remove(w.id)
	c.mWorkers.Set(int64(len(c.workers)))
	c.cfg.Metrics.Remove(fmt.Sprintf("bimodal_cluster_queue_depth{worker=%q}", w.id))
	for _, ch := range w.waiters {
		close(ch)
	}
	w.waiters = nil

	again := append([]*task(nil), w.queue...)
	w.queue = nil
	for id, t := range w.running {
		delete(w.running, id)
		c.mRequeued.Inc()
		if died {
			if t.attempts >= c.cfg.MaxAttempts {
				delete(c.tasks, t.id)
				c.mFailed.Inc()
				t.result <- taskResult{err: fmt.Errorf(
					"cluster: cell %s failed on %d workers (last: %s died)",
					t.hash, t.attempts, w.id)}
				continue
			}
		}
		again = append(again, t)
	}
	for _, t := range again {
		c.placeLocked(t)
	}
}

// Task is the wire view of one dispatched cell.
type Task struct {
	ID   string       `json:"task_id"`
	Spec spec.RunSpec `json:"spec"`
	Hash string       `json:"hash"`
}

func exportTask(t *task) *Task {
	return &Task{ID: t.id, Spec: t.rs, Hash: t.hash}
}

// WorkerInfo is the introspection view of one registered worker.
type WorkerInfo struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
}

// Workers lists the registered workers sorted by ID, plus the count of
// orphaned cells waiting for any worker at all.
func (c *Coordinator) Workers() (workers []WorkerInfo, orphans int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		workers = append(workers, WorkerInfo{
			ID: w.id, Name: w.name, Queued: len(w.queue), Running: len(w.running),
		})
	}
	sortWorkers(workers)
	return workers, len(c.orphans)
}

func sortWorkers(ws []WorkerInfo) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].ID < ws[j-1].ID; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// removeTask filters t out of a queue, preserving order.
func removeTask(q []*task, t *task) []*task {
	for i, cur := range q {
		if cur == t {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// removeWaiter filters ch out of a waiter list, preserving order.
func removeWaiter(ws []chan *task, ch chan *task) []chan *task {
	for i, cur := range ws {
		if cur == ch {
			return append(ws[:i], ws[i+1:]...)
		}
	}
	return ws
}
