package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:key-%05d", i)
	}
	return keys
}

func TestRingEmptyAndMembership(t *testing.T) {
	var r ring
	if got := r.owner("sha256:x"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	r.add("w1")
	r.add("w1") // idempotent
	if r.size() != 1 {
		t.Fatalf("size = %d, want 1", r.size())
	}
	if got := r.owner("sha256:x"); got != "w1" {
		t.Errorf("single-member owner = %q, want w1", got)
	}
	r.remove("w2") // absent: no-op
	r.remove("w1")
	if r.size() != 0 || r.owner("sha256:x") != "" {
		t.Errorf("ring not empty after removal: size %d", r.size())
	}
}

// TestRingBalance checks that virtual nodes keep shard sizes within a
// reasonable band of even.
func TestRingBalance(t *testing.T) {
	var r ring
	workers := []string{"w1", "w2", "w3", "w4"}
	for _, w := range workers {
		r.add(w)
	}
	counts := map[string]int{}
	keys := ringKeys(4000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	for _, w := range workers {
		if counts[w] < 500 || counts[w] > 1700 {
			t.Errorf("worker %s owns %d/4000 keys, outside [500, 1700]: %v", w, counts[w], counts)
		}
	}
}

// TestRingStability checks the consistent-hashing property: removing one
// of N workers relocates only that worker's keys, and re-adding it
// restores the original placement exactly.
func TestRingStability(t *testing.T) {
	var r ring
	for _, w := range []string{"w1", "w2", "w3", "w4"} {
		r.add(w)
	}
	keys := ringKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.owner(k)
	}

	r.remove("w2")
	moved := 0
	for _, k := range keys {
		after := r.owner(k)
		if after == "w2" {
			t.Fatalf("key %s still owned by removed worker", k)
		}
		if after != before[k] {
			if before[k] != "w2" {
				t.Fatalf("key %s moved from surviving worker %s to %s", k, before[k], after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Error("removing a worker relocated no keys")
	}

	r.add("w2")
	for _, k := range keys {
		if got := r.owner(k); got != before[k] {
			t.Fatalf("key %s owned by %s after re-add, originally %s", k, got, before[k])
		}
	}
}
