package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bimodal/internal/service"
	"bimodal/internal/spec"
	"bimodal/internal/telemetry"
)

// sweep100 is the acceptance sweep: 100 explicit cells (seeds 1..100 of
// one scheme/mix), small enough to simulate in CI but wide enough to
// shard across every worker.
func sweep100() service.SweepRequest {
	req := service.SweepRequest{}
	for seed := uint64(1); seed <= 100; seed++ {
		req.Specs = append(req.Specs, spec.RunSpec{
			Scheme: "alloy", Mix: "Q1", Seed: seed,
			Options: spec.Options{AccessesPerCore: 300, CacheDivisor: 64},
		})
	}
	return req
}

// testCluster is a coordinator-backed server plus a fleet of in-process
// workers, each individually killable.
type testCluster struct {
	coord  *Coordinator
	client *service.Client
	cancel []context.CancelFunc // per-worker kill switches
	wg     sync.WaitGroup
}

// kill cancels worker i's context without deregistration — the
// crash path, recovered by the liveness reaper.
func (tc *testCluster) kill(i int) { tc.cancel[i]() }

// startCluster boots a coordinator+server and n workers over real HTTP.
// runFor builds worker i's cell runner (nil selects the production
// simulator path).
func startCluster(t *testing.T, n int, runFor func(i int) func(context.Context, spec.RunSpec) ([]byte, error)) *testCluster {
	t.Helper()
	reg := telemetry.NewRegistry()
	coord := New(Config{
		TTL:       500 * time.Millisecond,
		ReapEvery: 100 * time.Millisecond,
		PollWait:  200 * time.Millisecond,
		Metrics:   reg,
	})
	srv := service.New(service.Config{
		Workers:     1,
		SweepFanout: 16,
		Dispatcher:  coord,
	})
	mux := http.NewServeMux()
	mux.Handle("/cluster/", coord.Handler())
	mux.Handle("/", srv.Handler())
	hs := httptest.NewServer(mux)

	tc := &testCluster{coord: coord, client: service.NewClient(hs.URL)}
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		tc.cancel = append(tc.cancel, cancel)
		w := &Worker{
			Coordinator: hs.URL,
			Name:        fmt.Sprintf("w%d", i),
			Slots:       2,
			Metrics:     reg,
			noLeave:     true, // kills must look like crashes
		}
		if runFor != nil {
			w.Run = runFor(i)
		}
		tc.wg.Add(1)
		go func() {
			defer tc.wg.Done()
			_ = w.Serve(ctx)
		}()
	}
	t.Cleanup(func() {
		for _, cancel := range tc.cancel {
			cancel()
		}
		tc.wg.Wait()
		hs.Close()
		coord.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return tc
}

// singleNodeResult runs the sweep on a plain one-process server and
// returns the merged result bytes — the byte-identity baseline.
func singleNodeResult(t *testing.T, req service.SweepRequest) []byte {
	t.Helper()
	srv := service.New(service.Config{Workers: 1})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	c := service.NewClient(hs.URL)
	st, err := c.SubmitSweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitSweep(context.Background(), st.ID, 20*time.Millisecond)
	if err != nil || fin.State != service.StateCompleted {
		t.Fatalf("single-node sweep: %v, state %s (%s)", err, fin.State, fin.Error)
	}
	return fin.Result
}

// TestClusterSweepWorkerDeath is the acceptance scenario: a 100-cell
// sweep shards over 3 workers, one worker is killed mid-run, and still
// (a) every cell completes exactly once, (b) the merged result is
// byte-identical to a single-node run, (c) the requeue is visible in
// telemetry, and (d) an immediate identical resweep is 100% store-served
// with zero re-simulations.
func TestClusterSweepWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster integration test")
	}
	req := sweep100()
	baseline := singleNodeResult(t, req)

	// Worker 0 simulates its first 5 cells normally, then wedges: it
	// holds subsequent cells forever, so killing it strands in-flight
	// work that only the reaper can recover.
	var victimCells atomic.Int32
	wedged := make(chan struct{})
	var once sync.Once
	tc := startCluster(t, 3, func(i int) func(context.Context, spec.RunSpec) ([]byte, error) {
		if i != 0 {
			return nil
		}
		return func(ctx context.Context, rs spec.RunSpec) ([]byte, error) {
			if victimCells.Add(1) > 5 {
				once.Do(func() { close(wedged) })
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return service.RunCellSpec(ctx, rs)
		}
	})
	ctx := context.Background()

	st, err := tc.client.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 100 {
		t.Fatalf("sweep cells = %d, want 100", st.Cells)
	}
	select {
	case <-wedged:
	case <-time.After(30 * time.Second):
		t.Fatal("worker 0 never wedged — placement sent it no sixth cell")
	}
	tc.kill(0)

	fin, err := tc.client.WaitSweep(ctx, st.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateCompleted || fin.CellsDone != 100 {
		t.Fatalf("cluster sweep: state %s (%s), %d/100 cells", fin.State, fin.Error, fin.CellsDone)
	}
	if !bytes.Equal(fin.Result, baseline) {
		t.Errorf("cluster merged result differs from single-node baseline (%d vs %d bytes)",
			len(fin.Result), len(baseline))
	}
	if got := tc.coord.mCompleted.Value(); got != 100 {
		t.Errorf("coordinator completions = %d, want exactly 100 (exactly-once)", got)
	}
	if got := tc.coord.mRequeued.Value(); got < 1 {
		t.Errorf("requeued = %d, want >= 1 (the killed worker's in-flight cells)", got)
	}
	if got := tc.coord.mDead.Value(); got != 1 {
		t.Errorf("dead workers = %d, want 1", got)
	}

	// Identical resweep: served entirely from the content-addressed
	// store — zero new dispatches reach the cluster.
	dispatchedBefore := tc.coord.mDispatched.Value()
	st2, err := tc.client.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := tc.client.WaitSweep(ctx, st2.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin2.State != service.StateCompleted || fin2.StoreHits != 100 {
		t.Fatalf("resweep: state %s, %d/100 store hits; want fully store-served",
			fin2.State, fin2.StoreHits)
	}
	if !bytes.Equal(fin2.Result, baseline) {
		t.Error("resweep result differs from baseline")
	}
	if got := tc.coord.mDispatched.Value(); got != dispatchedBefore {
		t.Errorf("resweep dispatched %d new cells, want 0", got-dispatchedBefore)
	}
}

// TestClusterStealing saturates one worker's shard and checks that idle
// peers steal rather than sit out the sweep.
func TestClusterStealing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster integration test")
	}
	tc := startCluster(t, 3, nil)
	ctx := context.Background()
	st, err := tc.client.SubmitSweep(ctx, sweep100())
	if err != nil {
		t.Fatal(err)
	}
	fin, err := tc.client.WaitSweep(ctx, st.ID, 50*time.Millisecond)
	if err != nil || fin.State != service.StateCompleted {
		t.Fatalf("sweep: %v, state %+v", err, fin.State)
	}
	// With 16-way fanout against 3 workers × 2 slots, queues are uneven
	// enough that at least one pull must have crossed shards.
	if got := tc.coord.mStolen.Value(); got == 0 {
		t.Error("no cells were stolen across workers")
	}
	if got := tc.coord.mCompleted.Value(); got != 100 {
		t.Errorf("completions = %d, want 100", got)
	}
}
