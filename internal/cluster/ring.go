// Package cluster distributes sweep cells across worker processes.
//
// A Coordinator embeds in the job server (it implements
// service.Dispatcher, so the sweep executor hands it every cell the
// content-addressed store cannot answer) and shards cells over the
// registered workers by consistent hashing on the cell's canonical spec
// hash. Workers are thin pull loops around service.RunCellSpec: join,
// long-poll for tasks, run, report bytes. Because result bytes are a pure
// function of the canonical RunSpec (the determinism contract the
// simulator packages enforce), placement is a performance decision only —
// a sweep merged from three workers is byte-identical to the same sweep
// run on one node, and the goldens prove it.
//
// The placement ring is the usual consistent-hashing construction: each
// worker projects a fixed number of virtual nodes onto a 64-bit circle,
// and a cell belongs to the first virtual node clockwise of its spec
// hash. Virtual nodes keep the shard sizes balanced (stddev shrinks with
// sqrt(vnodes)) and joining or losing one worker moves only ~1/N of the
// keys — cells queued on surviving workers stay put through a reap.
package cluster

import (
	"hash/fnv"
	"sort"
)

// vnodes is the number of virtual nodes each worker projects onto the
// ring. 64 keeps per-worker shard sizes within a few percent of even for
// the fleet sizes this coordinator targets (single digits to tens).
const vnodes = 64

// ringPoint is one virtual node: a position on the hash circle and the
// worker that owns it.
type ringPoint struct {
	pos uint64
	id  string
}

// ring is a consistent-hash ring over worker IDs. It is not
// concurrency-safe; the Coordinator guards it with its own mutex.
type ring struct {
	points []ringPoint // sorted by pos
}

// mix64 is the splitmix64 finalizer. FNV-1a alone disperses poorly when
// inputs differ only in their last bytes (each trailing byte gets just
// one multiply, so sequential suffixes land within a narrow band of the
// circle); the finalizer avalanches every input bit across the word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash64 positions a key on the circle (FNV-1a, finalized).
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// add projects id's virtual nodes onto the ring. Adding a present member
// is a no-op.
func (r *ring) add(id string) {
	for _, p := range r.points {
		if p.id == id {
			return
		}
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	base := h.Sum64()
	for i := 0; i < vnodes; i++ {
		// Golden-ratio stride before the finalizer spreads the virtual
		// nodes of one worker uniformly over the circle.
		pos := mix64(base + uint64(i)*0x9e3779b97f4a7c15)
		r.points = append(r.points, ringPoint{pos: pos, id: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
}

// remove drops id's virtual nodes. Removing an absent member is a no-op.
func (r *ring) remove(id string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// owner returns the worker owning key: the first virtual node clockwise
// of the key's position, wrapping past zero. Empty ring returns "".
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	pos := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}

// size returns the number of distinct members.
func (r *ring) size() int { return len(r.points) / vnodes }
