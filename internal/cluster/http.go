package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"bimodal/internal/service"
)

// The cluster control plane is a small HTTP surface under /cluster/v1,
// mounted beside the public v1 API by cmd/bmserved in coordinator mode.
// Failures use the same uniform error envelope as the public API (via
// service.WriteError); a reaped worker sees 410 worker_gone and rejoins
// under a fresh ID.
//
//	POST   /cluster/v1/workers               join    {"name"} -> {"id","ttl_seconds"}
//	POST   /cluster/v1/workers/{id}/heartbeat liveness refresh -> 204
//	POST   /cluster/v1/workers/{id}/pull      long-poll next cell -> 200 Task | 204
//	DELETE /cluster/v1/workers/{id}           clean leave -> 204
//	POST   /cluster/v1/tasks/{tid}/result     report {"worker_id","blob"|"error"} -> 204
//	GET    /cluster/v1/workers                introspection -> {"workers","orphans"}

// joinRequest names a joining worker (informational only).
type joinRequest struct {
	Name string `json:"name,omitempty"`
}

// joinReply tells the worker its identity and liveness obligations.
// TTL is in milliseconds so tests can run sub-second liveness windows.
type joinReply struct {
	ID        string `json:"id"`
	TTLMillis int64  `json:"ttl_ms"`
}

// resultReport is a worker's verdict on one task: result bytes, or a
// simulation error. Blob stays raw end to end — the coordinator hands the
// exact bytes to the sweep assembler.
type resultReport struct {
	WorkerID string          `json:"worker_id"`
	Blob     json.RawMessage `json:"blob,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// workersReply is the introspection listing.
type workersReply struct {
	Workers []WorkerInfo `json:"workers"`
	Orphans int          `json:"orphans"`
}

// Handler serves the cluster control plane.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/workers", c.handleJoin)
	mux.HandleFunc("GET /cluster/v1/workers", c.handleWorkers)
	mux.HandleFunc("POST /cluster/v1/workers/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /cluster/v1/workers/{id}/pull", c.handlePull)
	mux.HandleFunc("DELETE /cluster/v1/workers/{id}", c.handleLeave)
	mux.HandleFunc("POST /cluster/v1/tasks/{tid}/result", c.handleResult)
	return mux
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		service.WriteError(w, http.StatusBadRequest, service.CodeInvalidRequest,
			fmt.Sprintf("decoding join request: %v", err), nil)
		return
	}
	id, ttl, err := c.Join(req.Name)
	if err != nil {
		service.WriteError(w, http.StatusServiceUnavailable, service.CodeDraining,
			err.Error(), nil)
		return
	}
	writeJSON(w, joinReply{ID: id, TTLMillis: ttl.Milliseconds()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if err := c.Heartbeat(r.PathValue("id")); err != nil {
		writeWorkerGone(w, r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handlePull(w http.ResponseWriter, r *http.Request) {
	t, err := c.Pull(r.Context(), r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownWorker):
		writeWorkerGone(w, r.PathValue("id"))
	case err != nil || t == nil:
		// Canceled request or empty long-poll window: nothing to hand out.
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, t)
	}
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	if err := c.Leave(r.PathValue("id")); err != nil {
		writeWorkerGone(w, r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var rep resultReport
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&rep); err != nil {
		service.WriteError(w, http.StatusBadRequest, service.CodeInvalidRequest,
			fmt.Sprintf("decoding result report: %v", err), nil)
		return
	}
	var workErr error
	if rep.Error != "" {
		workErr = fmt.Errorf("cluster: worker %s: %s", rep.WorkerID, rep.Error)
	} else if len(rep.Blob) == 0 {
		service.WriteError(w, http.StatusBadRequest, service.CodeInvalidRequest,
			"result report carries neither blob nor error", nil)
		return
	}
	// Report is idempotent: late and duplicate deliveries land here too
	// and are absorbed, so a worker may always retry this call.
	c.Report(rep.WorkerID, r.PathValue("tid"), rep.Blob, workErr)
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	workers, orphans := c.Workers()
	if workers == nil {
		workers = []WorkerInfo{}
	}
	writeJSON(w, workersReply{Workers: workers, Orphans: orphans})
}

// writeWorkerGone emits the 410 that tells a worker its registration is
// void and it must rejoin for a fresh ID.
func writeWorkerGone(w http.ResponseWriter, id string) {
	service.WriteError(w, http.StatusGone, service.CodeWorkerGone,
		fmt.Sprintf("worker %q is not registered (reaped or never joined); rejoin for a new ID", id),
		map[string]any{"worker_id": id})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}
