package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"bimodal/internal/spec"
	"bimodal/internal/telemetry"
)

// fakeClock is a mutex-guarded manual clock for deterministic reaper
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestCoordinator builds a coordinator on a private registry and fake
// clock; the background reaper is effectively disabled (huge ReapEvery)
// so tests drive reapOnce by hand.
func newTestCoordinator(t *testing.T, cfg Config) (*Coordinator, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	cfg.Now = clk.now
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.ReapEvery <= 0 {
		cfg.ReapEvery = time.Hour
	}
	c := New(cfg)
	t.Cleanup(c.Close)
	return c, clk
}

func testSpec(seed uint64) spec.RunSpec {
	return spec.RunSpec{Scheme: "alloy", Mix: "Q1", Seed: seed,
		Options: spec.Options{AccessesPerCore: 100, CacheDivisor: 64}}
}

// dispatch starts RunCell in the background and returns the result
// channel.
func dispatch(ctx context.Context, c *Coordinator, seed uint64) chan taskResult {
	out := make(chan taskResult, 1)
	rs := testSpec(seed)
	hash := fmt.Sprintf("sha256:%064d", seed)
	go func() {
		blob, err := c.RunCell(ctx, rs, hash)
		out <- taskResult{blob: blob, err: err}
	}()
	return out
}

// pull synchronously asks the coordinator for one task.
func pull(t *testing.T, c *Coordinator, worker string) *Task {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	task, err := c.Pull(ctx, worker)
	if err != nil || task == nil {
		t.Fatalf("pull(%s) = %v, %v; want a task", worker, task, err)
	}
	return task
}

func TestCoordinatorRoundTrip(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{})
	w1, _, err := c.Join("alpha")
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	res := dispatch(ctx, c, 1)
	task := pull(t, c, w1)
	if task.Spec.Seed != 1 || !strings.HasPrefix(task.Hash, "sha256:") {
		t.Fatalf("pulled task %+v", task)
	}
	c.Report(w1, task.ID, []byte(`{"ok":1}`), nil)
	r := <-res
	if r.err != nil || string(r.blob) != `{"ok":1}` {
		t.Fatalf("RunCell = %q, %v", r.blob, r.err)
	}

	// Duplicate report after completion is idempotent and counted.
	c.Report(w1, task.ID, []byte(`{"ok":2}`), nil)
	if got := c.mLateReports.Value(); got != 1 {
		t.Errorf("late reports = %d, want 1", got)
	}
	if got := c.mCompleted.Value(); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
}

// TestCoordinatorOrphans parks cells submitted before any worker exists
// and places them on the first join.
func TestCoordinatorOrphans(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{})
	res := dispatch(context.Background(), c, 7)
	waitFor(t, func() bool {
		_, orphans := c.Workers()
		return orphans == 1
	})
	w1, _, err := c.Join("late")
	if err != nil {
		t.Fatal(err)
	}
	task := pull(t, c, w1)
	c.Report(w1, task.ID, []byte(`{}`), nil)
	if r := <-res; r.err != nil {
		t.Fatal(r.err)
	}
}

// TestCoordinatorSteal: all pending work sits on one worker's queue; a
// newly joined idle worker must steal from it.
func TestCoordinatorSteal(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{})
	w1, _, _ := c.Join("loaded")
	ctx := context.Background()
	var results []chan taskResult
	for seed := uint64(1); seed <= 4; seed++ {
		results = append(results, dispatch(ctx, c, seed))
	}
	// Wait until every cell is queued on w1.
	waitFor(t, func() bool {
		ws, _ := c.Workers()
		return len(ws) == 1 && ws[0].Queued == 4
	})

	w2, _, _ := c.Join("idle")
	for i := 0; i < 4; i++ {
		task := pull(t, c, w2) // own queue empty: steals from w1
		c.Report(w2, task.ID, []byte(`{}`), nil)
	}
	for _, res := range results {
		if r := <-res; r.err != nil {
			t.Fatal(r.err)
		}
	}
	if got := c.mStolen.Value(); got != 4 {
		t.Errorf("stolen = %d, want 4", got)
	}
	_ = w1
}

// TestCoordinatorReapRequeue kills a worker holding an in-flight cell by
// silencing its heartbeat past the TTL; the survivor must complete it,
// and the requeue must be visible in telemetry.
func TestCoordinatorReapRequeue(t *testing.T) {
	c, clk := newTestCoordinator(t, Config{TTL: 10 * time.Second})
	w1, ttl, _ := c.Join("doomed")
	if ttl != 10*time.Second {
		t.Fatalf("ttl = %v", ttl)
	}
	res := dispatch(context.Background(), c, 3)
	task := pull(t, c, w1)

	clk.advance(5 * time.Second)
	w2, _, _ := c.Join("survivor")
	c.reapOnce() // w1 five seconds silent: still alive
	if err := c.Heartbeat(w1); err != nil {
		t.Fatalf("live worker reaped early: %v", err)
	}

	clk.advance(11 * time.Second)
	c.Heartbeat(w2)
	c.reapOnce()
	if err := c.Heartbeat(w1); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("dead worker heartbeat err = %v, want ErrUnknownWorker", err)
	}
	if got := c.mDead.Value(); got != 1 {
		t.Errorf("dead workers = %d, want 1", got)
	}
	if got := c.mRequeued.Value(); got != 1 {
		t.Errorf("requeued = %d, want 1", got)
	}

	// The dead worker's report arrives late and is dropped; the survivor's
	// completes the cell.
	task2 := pull(t, c, w2)
	if task2.Hash != task.Hash {
		t.Fatalf("survivor pulled %s, want requeued %s", task2.Hash, task.Hash)
	}
	c.Report(w1, task.ID, []byte(`{"stale":true}`), nil)
	select {
	case r := <-res:
		t.Fatalf("late report from dead worker completed the cell: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	c.Report(w2, task2.ID, []byte(`{"fresh":true}`), nil)
	if r := <-res; r.err != nil || string(r.blob) != `{"fresh":true}` {
		t.Fatalf("RunCell = %q, %v", r.blob, r.err)
	}
	if got := c.mLateReports.Value(); got != 1 {
		t.Errorf("late reports = %d, want 1", got)
	}
}

// TestCoordinatorMaxAttempts fails a cell after it has been handed to
// MaxAttempts workers that all died running it.
func TestCoordinatorMaxAttempts(t *testing.T) {
	c, clk := newTestCoordinator(t, Config{TTL: time.Second, MaxAttempts: 2})
	res := dispatch(context.Background(), c, 9)
	for i := 0; i < 2; i++ {
		w, _, _ := c.Join(fmt.Sprintf("victim-%d", i))
		pull(t, c, w)
		clk.advance(2 * time.Second)
		c.reapOnce()
	}
	r := <-res
	if r.err == nil || !strings.Contains(r.err.Error(), "failed on 2 workers") {
		t.Fatalf("RunCell err = %v, want attempt-budget failure", r.err)
	}
	if got := c.mFailed.Value(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
}

// TestCoordinatorLeaveRequeues returns a leaving worker's cells to the
// pool without burning attempts.
func TestCoordinatorLeaveRequeues(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{MaxAttempts: 1})
	w1, _, _ := c.Join("transient")
	res := dispatch(context.Background(), c, 5)
	task := pull(t, c, w1)
	if err := c.Leave(w1); err != nil {
		t.Fatal(err)
	}
	// MaxAttempts is 1 and the first attempt is already burned; only a
	// leave (not a reap) lets the cell run again.
	w2, _, _ := c.Join("replacement")
	task2 := pull(t, c, w2)
	if task2.Hash != task.Hash {
		t.Fatalf("replacement pulled %s, want %s", task2.Hash, task.Hash)
	}
	c.Report(w2, task2.ID, []byte(`{}`), nil)
	if r := <-res; r.err != nil {
		t.Fatal(r.err)
	}
	if got := c.mRequeued.Value(); got != 1 {
		t.Errorf("requeued = %d, want 1", got)
	}
}

// TestCoordinatorCancelWithdraws removes an abandoned pending cell so no
// worker ever runs it.
func TestCoordinatorCancelWithdraws(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{})
	w1, _, _ := c.Join("w")
	ctx, cancel := context.WithCancel(context.Background())
	res := dispatch(ctx, c, 11)
	waitFor(t, func() bool {
		ws, _ := c.Workers()
		return len(ws) == 1 && ws[0].Queued == 1
	})
	cancel()
	if r := <-res; !errors.Is(r.err, context.Canceled) {
		t.Fatalf("RunCell err = %v, want context.Canceled", r.err)
	}
	waitFor(t, func() bool {
		ws, _ := c.Workers()
		return ws[0].Queued == 0
	})
	pctx, pcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer pcancel()
	if task, err := c.Pull(pctx, w1); task != nil ||
		(err != nil && !errors.Is(err, context.DeadlineExceeded)) {
		t.Fatalf("pull after withdrawal = %v, %v; want empty", task, err)
	}
}

// TestCoordinatorLongPollHandoff parks a pull first and feeds it a cell
// enqueued afterwards.
func TestCoordinatorLongPollHandoff(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{PollWait: 5 * time.Second})
	w1, _, _ := c.Join("parked")
	type pulled struct {
		task *Task
		err  error
	}
	got := make(chan pulled, 1)
	go func() {
		task, err := c.Pull(context.Background(), w1)
		got <- pulled{task, err}
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.workers[w1].waiters) == 1
	})
	res := dispatch(context.Background(), c, 13)
	p := <-got
	if p.err != nil || p.task == nil {
		t.Fatalf("parked pull = %v, %v", p.task, p.err)
	}
	c.Report(w1, p.task.ID, []byte(`{}`), nil)
	if r := <-res; r.err != nil {
		t.Fatal(r.err)
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
