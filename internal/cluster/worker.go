package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"bimodal/internal/service"
	"bimodal/internal/spec"
	"bimodal/internal/store"
	"bimodal/internal/telemetry"
)

// Worker is a thin pull loop around the simulator: it joins a
// coordinator, long-polls for cells, runs each one through
// service.RunCellSpec (marshaling the result exactly once — those bytes
// travel unmodified into the merged sweep), and reports back. A worker
// holds no sweep state; killing one loses nothing but the cells it was
// running, which the coordinator requeues after the liveness TTL.
type Worker struct {
	// Coordinator is the coordinator's base URL ("http://host:port").
	Coordinator string
	// Name labels the worker in introspection output (optional).
	Name string
	// Slots is the number of concurrent pull loops (parallel cells).
	// 0 selects GOMAXPROCS.
	Slots int
	// Store optionally short-circuits cells whose result bytes are already
	// present locally (a shared content-addressed store lets any node
	// answer any spec hash). Completed cells are written back. Nil
	// disables the local store pass.
	Store store.Store
	// Run executes one cell — a test seam. Nil selects the production
	// simulator path: with a Store configured, service.NewWarmCellRunner
	// (cells restore warm-state snapshots produced locally or by peers
	// sharing the store instead of re-running warmup); otherwise plain
	// service.RunCellSpec.
	Run func(ctx context.Context, rs spec.RunSpec) ([]byte, error)
	// Metrics receives worker instrumentation. Nil selects
	// telemetry.Default.
	Metrics *telemetry.Registry
	// Client is the HTTP client for coordinator calls. Nil selects a
	// client with no global timeout (pulls are long-polls).
	Client *http.Client

	// noLeave is a test seam: skip the clean deregistration on shutdown,
	// simulating a crash so the coordinator's liveness reaper (not the
	// leave path) must recover the worker's in-flight cells.
	noLeave bool
}

// Serve joins the coordinator and processes cells until ctx ends. If the
// coordinator declares the worker dead (HTTP 410 worker_gone — e.g. after
// a long GC pause or network partition outlived the TTL) the worker
// rejoins under a fresh ID and keeps serving; cells it reported late in
// between are dropped idempotently by the coordinator. The error is
// always non-nil: ctx.Err() on clean shutdown, or the failure that
// stopped the worker.
func (w *Worker) Serve(ctx context.Context) error {
	hc := w.Client
	if hc == nil {
		hc = &http.Client{}
	}
	slots := w.Slots
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	metrics := w.Metrics
	if metrics == nil {
		metrics = telemetry.Default
	}
	run := w.Run
	if run == nil {
		if w.Store != nil {
			run = service.NewWarmCellRunner(w.Store, metrics)
		} else {
			run = service.RunCellSpec
		}
	}
	s := &workerSession{
		base:    w.Coordinator,
		name:    w.Name,
		hc:      hc,
		run:     run,
		store:   w.Store,
		noLeave: w.noLeave,
		mCells:  metrics.Counter("bimodal_worker_cells_total"),
		mLocal:  metrics.Counter("bimodal_worker_store_hits_total"),
		mRejoin: metrics.Counter("bimodal_worker_rejoins_total"),
	}
	for {
		if err := s.join(ctx); err != nil {
			return fmt.Errorf("cluster: joining %s: %w", w.Coordinator, err)
		}
		err := s.serveOnce(ctx, slots)
		if !errors.Is(err, ErrUnknownWorker) {
			return err
		}
		// Declared dead; rejoin under a fresh ID.
		s.mRejoin.Inc()
	}
}

// workerSession is one registration's worth of state.
type workerSession struct {
	base  string
	name  string
	hc    *http.Client
	run   func(ctx context.Context, rs spec.RunSpec) ([]byte, error)
	store store.Store

	id      string
	ttl     time.Duration
	noLeave bool

	mCells  *telemetry.Counter
	mLocal  *telemetry.Counter
	mRejoin *telemetry.Counter
}

// join registers with the coordinator.
func (s *workerSession) join(ctx context.Context) error {
	var rep joinReply
	if err := s.call(ctx, http.MethodPost, "/cluster/v1/workers",
		joinRequest{Name: s.name}, &rep); err != nil {
		return err
	}
	s.id = rep.ID
	s.ttl = time.Duration(rep.TTLMillis) * time.Millisecond
	return nil
}

// serveOnce runs the pull loops plus the heartbeat ticker until ctx ends
// or any loop sees worker_gone.
func (s *workerSession) serveOnce(ctx context.Context, slots int) error {
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		every := s.ttl / 3
		if every <= 0 {
			every = time.Second
		}
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if err := s.call(ctx, http.MethodPost,
					"/cluster/v1/workers/"+s.id+"/heartbeat", nil, nil); errors.Is(err, ErrUnknownWorker) {
					cancel(ErrUnknownWorker)
					return
				}
			}
		}
	}()

	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.pullLoop(ctx); err != nil {
				cancel(err)
			}
		}()
	}
	wg.Wait()

	// A clean shutdown deregisters so the coordinator requeues immediately
	// instead of waiting out the TTL. Best-effort: the reaper covers us.
	if cause := context.Cause(ctx); !errors.Is(cause, ErrUnknownWorker) {
		if !s.noLeave {
			dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = s.call(dctx, http.MethodDelete, "/cluster/v1/workers/"+s.id, nil, nil)
			dcancel()
		}
		return cause
	}
	return ErrUnknownWorker
}

// pullLoop pulls, runs and reports cells until ctx ends.
func (s *workerSession) pullLoop(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		var t Task
		found, err := s.pull(ctx, &t)
		if err != nil {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			return err
		}
		if !found {
			continue // empty long-poll window
		}
		s.mCells.Inc()
		blob, runErr := s.runCell(ctx, t)
		if ctx.Err() != nil {
			// Killed mid-cell: do not report; the coordinator requeues.
			return context.Cause(ctx)
		}
		rep := resultReport{WorkerID: s.id}
		if runErr != nil {
			rep.Error = runErr.Error()
		} else {
			rep.Blob = blob
		}
		if err := s.call(ctx, http.MethodPost,
			"/cluster/v1/tasks/"+t.ID+"/result", rep, nil); err != nil && ctx.Err() == nil {
			return fmt.Errorf("cluster: reporting %s: %w", t.ID, err)
		}
	}
}

// runCell produces the cell's result bytes: from the local
// content-addressed store when possible, else by simulating. Fresh bytes
// are written back so the next node asking for this spec hash is served
// from storage.
func (s *workerSession) runCell(ctx context.Context, t Task) ([]byte, error) {
	if s.store != nil {
		if blob, ok, err := s.store.Get(t.Hash); err == nil && ok {
			s.mLocal.Inc()
			return blob, nil
		}
	}
	blob, err := s.run(ctx, t.Spec)
	if err != nil {
		return nil, err
	}
	if s.store != nil {
		// Best-effort: a store write failure must not fail the cell.
		_ = s.store.Put(t.Hash, blob)
	}
	return blob, nil
}

// pull long-polls for one task; found is false on an empty 204 window.
func (s *workerSession) pull(ctx context.Context, t *Task) (found bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		s.base+"/cluster/v1/workers/"+s.id+"/pull", nil)
	if err != nil {
		return false, err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, json.NewDecoder(resp.Body).Decode(t)
	case http.StatusNoContent:
		return false, nil
	case http.StatusGone:
		return false, ErrUnknownWorker
	default:
		return false, apiError(resp)
	}
}

// call issues one JSON request/reply exchange against the coordinator.
func (s *workerSession) call(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, s.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return ErrUnknownWorker
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError decodes a non-2xx coordinator reply through the shared
// envelope decoder, so worker-side failures carry the same typed codes as
// public API failures.
func apiError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	return service.DecodeAPIError(resp.StatusCode, resp.Header.Get("Retry-After"),
		bytes.TrimSpace(msg))
}
