// Package engine provides the bounded worker pool that fans independent
// simulation cells out across CPUs. Every experiment cell (one mix on one
// scheme under one option set) builds its own scheme, generators and
// statistics by construction, so cells never share mutable state; the
// pool's only obligations are to bound concurrency, to deliver results in
// submission (index) order so parallel output is byte-identical to serial
// output, and to stop promptly when the context is cancelled or a cell
// fails.
package engine

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count request: values <= 0 select
// runtime.NumCPU() (the default for CPU-bound simulation cells).
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Map evaluates fn(ctx, i) for every i in [0, n) on at most workers
// goroutines and returns the results in index order, independent of
// completion order. workers <= 1 runs strictly serially on the calling
// goroutine. The first error cancels the remaining cells and is returned;
// a cancelled ctx surfaces as ctx.Err(). Results of cells that never ran
// are the zero value of T.
func Map[T any](ctx context.Context, workers, n int, fn func(context.Context, int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	// Parallel path: workers drain an index channel; each cell writes only
	// its own slot, so the slice needs no lock. The first failure cancels
	// the derived context, which both stops in-flight cells (they observe
	// ctx) and drains the feeder.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	idx := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err; cancel() })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				v, err := fn(cctx, i)
				if err != nil {
					fail(err)
					continue
				}
				out[i] = v
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-cctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return out, firstErr
	}
	return out, ctx.Err()
}
