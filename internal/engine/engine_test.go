package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalize(t *testing.T) {
	if Workers(0) != runtime.NumCPU() || Workers(-3) != runtime.NumCPU() {
		t.Error("non-positive worker counts should select NumCPU")
	}
	if Workers(7) != 7 {
		t.Error("explicit worker count not honored")
	}
}

func TestMapOrderIndependentOfCompletion(t *testing.T) {
	// Later cells finish first; results must still land in index order.
	out, err := Map(context.Background(), 8, 16, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Duration(16-i) * time.Millisecond / 4)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSerialAndParallelAgree(t *testing.T) {
	fn := func(_ context.Context, i int) (string, error) { return fmt.Sprint(i * 3), nil }
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		out, err := Map(context.Background(), workers, 20, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != fmt.Sprint(i*3) {
				t.Fatalf("workers=%d out[%d]=%q", workers, i, v)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var cur, peak int64
	_, err := Map(context.Background(), 3, 24, func(context.Context, int) (struct{}, error) {
		n := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&cur, -1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > 3 {
		t.Errorf("peak concurrency %d exceeds worker bound 3", p)
	}
}

func TestMapFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var ran int64
	_, err := Map(context.Background(), 2, 64, func(ctx context.Context, i int) (int, error) {
		atomic.AddInt64(&ran, 1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := atomic.LoadInt64(&ran); n == 64 {
		t.Error("error did not stop the feed (all 64 cells ran)")
	}
}

func TestMapCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran int64
		_, err := Map(ctx, workers, 8, func(context.Context, int) (int, error) {
			atomic.AddInt64(&ran, 1)
			return 0, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestMapZeroCells(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
