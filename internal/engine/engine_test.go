package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalize(t *testing.T) {
	if Workers(0) != runtime.NumCPU() || Workers(-3) != runtime.NumCPU() {
		t.Error("non-positive worker counts should select NumCPU")
	}
	if Workers(7) != 7 {
		t.Error("explicit worker count not honored")
	}
}

func TestMapOrderIndependentOfCompletion(t *testing.T) {
	// Later cells finish first; results must still land in index order.
	out, err := Map(context.Background(), 8, 16, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Duration(16-i) * time.Millisecond / 4)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSerialAndParallelAgree(t *testing.T) {
	fn := func(_ context.Context, i int) (string, error) { return fmt.Sprint(i * 3), nil }
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		out, err := Map(context.Background(), workers, 20, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != fmt.Sprint(i*3) {
				t.Fatalf("workers=%d out[%d]=%q", workers, i, v)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var cur, peak int64
	_, err := Map(context.Background(), 3, 24, func(context.Context, int) (struct{}, error) {
		n := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&cur, -1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > 3 {
		t.Errorf("peak concurrency %d exceeds worker bound 3", p)
	}
}

func TestMapFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var ran int64
	_, err := Map(context.Background(), 2, 64, func(ctx context.Context, i int) (int, error) {
		atomic.AddInt64(&ran, 1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := atomic.LoadInt64(&ran); n == 64 {
		t.Error("error did not stop the feed (all 64 cells ran)")
	}
}

func TestMapCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran int64
		_, err := Map(ctx, workers, 8, func(context.Context, int) (int, error) {
			atomic.AddInt64(&ran, 1)
			return 0, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestMapZeroCells(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// TestMapCancelMidFlight cancels the context while cells are in flight
// (cooperative cells that block on ctx.Done) and checks the map unwinds
// with ctx.Err() without feeding the remaining cells.
func TestMapCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var startOnce sync.Once
	started := make(chan struct{})
	var ran int64
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Map(ctx, 2, 32, func(ctx context.Context, i int) (int, error) {
			startOnce.Do(func() { close(started) })
			atomic.AddInt64(&ran, 1)
			<-ctx.Done()
			return 0, ctx.Err()
		})
	}()
	<-started
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not return within 10s of mid-flight cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n >= 32 {
		t.Errorf("cancellation did not stop the feed: %d/32 cells ran", n)
	}
}

// TestMapCancelMidFlightObliviousCells covers cells that never observe
// ctx: Map itself must still surface ctx.Err() once the feed drains.
func TestMapCancelMidFlightObliviousCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n int64
	_, err := Map(ctx, 2, 1024, func(context.Context, int) (int, error) {
		if atomic.AddInt64(&n, 1) == 4 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran := atomic.LoadInt64(&n); ran >= 1024 {
		t.Errorf("cancellation did not stop the feed: %d/1024 cells ran", ran)
	}
}

// TestMapErrorLeavesZeroValues pins the documented contract that cells
// which never ran (or ran after the failure) leave the zero value of T in
// their result slots, on both the serial and parallel paths.
func TestMapErrorLeavesZeroValues(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		out, err := Map(context.Background(), workers, 16, func(_ context.Context, i int) (string, error) {
			if i == 2 {
				return "", boom
			}
			if i > 2 && workers == 1 {
				t.Errorf("serial map ran cell %d after the failure at 2", i)
			}
			return fmt.Sprint(i), nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d err = %v, want boom", workers, err)
		}
		if out[2] != "" {
			t.Errorf("workers=%d failed cell slot = %q, want zero value", workers, out[2])
		}
		if workers == 1 {
			for i := 3; i < 16; i++ {
				if out[i] != "" {
					t.Errorf("serial out[%d] = %q, want zero value after error", i, out[i])
				}
			}
		}
	}
}

// TestMapZeroCellsCancelledContext: with no cells to run, Map still
// reports a dead context rather than silently succeeding.
func TestMapZeroCellsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Map(ctx, 4, 0, func(context.Context, int) (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %v, want empty", out)
	}
}
