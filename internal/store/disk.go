package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Disk is a filesystem-backed Store. Blobs live under root sharded by the
// first two hex digits of the digest (root/ab/<digest>), the layout git
// uses for loose objects, so directories stay small at hundreds of
// thousands of results. Writes go through a temp file in the same
// directory followed by an atomic rename, so readers — including other
// processes sharing the volume — never observe a partial blob.
type Disk struct {
	root string
}

// NewDisk opens (creating if needed) a disk store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating root: %w", err)
	}
	return &Disk{root: dir}, nil
}

// path maps a validated hash to its blob file.
func (s *Disk) path(hash string) string {
	digest := strings.TrimPrefix(hash, "sha256:")
	return filepath.Join(s.root, digest[:2], digest)
}

// Get implements Store.
func (s *Disk) Get(hash string) ([]byte, bool, error) {
	if err := CheckHash(hash); err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(s.path(hash))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: reading %s: %w", hash, err)
	}
	return b, true, nil
}

// Put implements Store.
func (s *Disk) Put(hash string, blob []byte) error {
	if err := CheckHash(hash); err != nil {
		return err
	}
	dst := s.path(hash)
	if _, err := os.Stat(dst); err == nil {
		return nil // content-addressed: existing bytes are the right bytes
	}
	dir := filepath.Dir(dst)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating shard: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", hash, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: closing %s: %w", hash, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publishing %s: %w", hash, err)
	}
	return nil
}

// Len implements Store by walking the shard directories.
func (s *Disk) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && !strings.HasPrefix(d.Name(), ".") {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("store: counting blobs: %w", err)
	}
	return n, nil
}
