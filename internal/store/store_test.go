package store

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bimodal/internal/spec"
)

// hashOf builds a well-formed content hash from arbitrary bytes.
func hashOf(t *testing.T, b []byte) string {
	t.Helper()
	return spec.HashBytes(b)
}

// stores builds one of each implementation for table-driven tests.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "disk": disk}
}

func TestRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			blob := []byte(`{"hit_rate":0.5}`)
			h := hashOf(t, blob)
			if _, ok, err := s.Get(h); err != nil || ok {
				t.Fatalf("empty store Get = %v, %v", ok, err)
			}
			if err := s.Put(h, blob); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Get(h)
			if err != nil || !ok || !bytes.Equal(got, blob) {
				t.Fatalf("Get = %q, %v, %v; want stored blob", got, ok, err)
			}
			// Re-putting is a no-op, not an error.
			if err := s.Put(h, blob); err != nil {
				t.Fatal(err)
			}
			if n, err := s.Len(); err != nil || n != 1 {
				t.Fatalf("Len = %d, %v; want 1", n, err)
			}
		})
	}
}

func TestMalformedHashRejected(t *testing.T) {
	bad := []string{
		"",
		"sha256:short",
		"md5:" + strings.Repeat("a", 64),
		"sha256:" + strings.Repeat("A", 64),       // upper-case hex
		"sha256:../" + strings.Repeat("a", 61),    // traversal attempt
		"sha256:" + strings.Repeat("a", 63) + "/", // separator
		strings.Repeat("a", 64) + strings.Repeat("b", 7), // no prefix
	}
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, h := range bad {
				if err := s.Put(h, []byte("x")); err == nil {
					t.Errorf("Put(%q) accepted a malformed hash", h)
				}
				if _, _, err := s.Get(h); err == nil {
					t.Errorf("Get(%q) accepted a malformed hash", h)
				}
			}
		})
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("persistent result")
	h := hashOf(t, blob)
	if err := s1.Put(h, blob); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(h)
	if err != nil || !ok || !bytes.Equal(got, blob) {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < 16; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					blob := []byte(fmt.Sprintf("blob-%d", i%4))
					h := hashOf(t, blob)
					for j := 0; j < 20; j++ {
						if err := s.Put(h, blob); err != nil {
							t.Error(err)
							return
						}
						if got, ok, err := s.Get(h); err != nil || !ok || !bytes.Equal(got, blob) {
							t.Errorf("Get = %q, %v, %v", got, ok, err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			if n, err := s.Len(); err != nil || n != 4 {
				t.Fatalf("Len = %d, %v; want 4", n, err)
			}
		})
	}
}
