// Package store provides the content-addressed result store shared by
// the serving and cluster layers: an append-only blob store keyed by the
// canonical spec hash ("sha256:<hex>", see internal/spec). Because a
// cell's result bytes are a pure function of its canonical spec — the
// determinism contract — a hash fully identifies one immutable blob, so
// the store never needs versioning, invalidation or overwrite semantics:
// putting the same hash twice necessarily stores the same bytes, and any
// node holding the blob may answer for any other.
//
// Two implementations cover the deployment spectrum: Mem for tests and
// single-process servers, Disk for coordinator/worker fleets that want
// results to survive restarts and be shareable over a mounted volume.
package store

import (
	"fmt"
	"sync"
)

// Store is a content-addressed blob store. Implementations must be safe
// for concurrent use.
type Store interface {
	// Get returns the blob stored under hash, or ok=false when absent.
	// Callers must not mutate the returned slice.
	Get(hash string) (blob []byte, ok bool, err error)
	// Put stores blob under hash. Re-putting an existing hash is a no-op
	// (the bytes are necessarily identical by the determinism contract).
	Put(hash string, blob []byte) error
	// Len reports the number of stored blobs.
	Len() (int, error)
}

// hashHexLen is the hex-digest length of a sha256 content hash.
const hashHexLen = 64

// CheckHash validates the "sha256:<64 lowercase hex>" shape shared by
// every store key. Disk rejects malformed hashes before they can touch
// the filesystem; Mem rejects them for symmetry so a bad key fails the
// same way everywhere.
func CheckHash(hash string) error {
	const prefix = "sha256:"
	if len(hash) != len(prefix)+hashHexLen || hash[:len(prefix)] != prefix {
		return fmt.Errorf("store: malformed content hash %q", hash)
	}
	for _, c := range hash[len(prefix):] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: malformed content hash %q", hash)
		}
	}
	return nil
}

// Mem is an in-memory Store. The zero value is ready to use.
type Mem struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Get implements Store.
func (s *Mem) Get(hash string) ([]byte, bool, error) {
	if err := CheckHash(hash); err != nil {
		return nil, false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.m[hash]
	return b, ok, nil
}

// Put implements Store. The blob is copied, so callers may reuse their
// buffer.
func (s *Mem) Put(hash string, blob []byte) error {
	if err := CheckHash(hash); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[hash]; ok {
		return nil
	}
	if s.m == nil {
		s.m = make(map[string][]byte)
	}
	s.m[hash] = append([]byte(nil), blob...)
	return nil
}

// Len implements Store.
func (s *Mem) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m), nil
}
