package sim

import (
	"testing"

	"bimodal/internal/spec"
)

// FuzzParseScheme checks that ParseScheme never panics and that its
// accept/reject decision is consistent with the typed SchemeID surface
// and the scheme registry: every accepted name resolves to a valid ID
// whose String is the registry's canonical name for that input (aliases
// like "cometa" parse but canonicalize), and has a working factory; every
// rejected name returns an invalid ID and is unknown to the registry too.
func FuzzParseScheme(f *testing.F) {
	for _, name := range SchemeNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("bimodal ")
	f.Add("BIMODAL")
	f.Add("alloy\x00")
	f.Add("cometa")
	f.Add("without-locator")
	f.Add("scheme-that-does-not-exist")

	f.Fuzz(func(t *testing.T, name string) {
		id, err := ParseScheme(name)
		if err != nil {
			if id.Valid() {
				t.Fatalf("ParseScheme(%q) = (%v, %v): error with valid ID", name, id, err)
			}
			if _, lerr := spec.Lookup(name); lerr == nil {
				t.Fatalf("ParseScheme(%q) rejected a registry-known name", name)
			}
			return
		}
		if !id.Valid() {
			t.Fatalf("ParseScheme(%q) accepted but ID %d invalid", name, int(id))
		}
		d, lerr := spec.Lookup(name)
		if lerr != nil {
			t.Fatalf("ParseScheme(%q) accepted a registry-unknown name: %v", name, lerr)
		}
		if got := id.String(); got != d.Name {
			t.Fatalf("ParseScheme(%q).String() = %q, want canonical %q", name, got, d.Name)
		}
		if id.Factory() == nil {
			t.Fatalf("ParseScheme(%q): nil factory for valid scheme", name)
		}
		if _, err := SchemeFactory(name); err != nil {
			t.Fatalf("SchemeFactory(%q) = %v after ParseScheme accepted it", name, err)
		}
	})
}
