package sim

import "testing"

// FuzzParseScheme checks that ParseScheme never panics and that its
// accept/reject decision is consistent with the typed SchemeID surface:
// every accepted name resolves to a valid ID that round-trips through
// String and has a working factory; every rejected name returns an
// invalid ID.
func FuzzParseScheme(f *testing.F) {
	for _, name := range SchemeNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("bimodal ")
	f.Add("BIMODAL")
	f.Add("alloy\x00")
	f.Add("scheme-that-does-not-exist")

	f.Fuzz(func(t *testing.T, name string) {
		id, err := ParseScheme(name)
		if err != nil {
			if id.Valid() {
				t.Fatalf("ParseScheme(%q) = (%v, %v): error with valid ID", name, id, err)
			}
			return
		}
		if !id.Valid() {
			t.Fatalf("ParseScheme(%q) accepted but ID %d invalid", name, int(id))
		}
		if got := id.String(); got != name {
			t.Fatalf("ParseScheme(%q).String() = %q, want round-trip", name, got)
		}
		if id.Factory() == nil {
			t.Fatalf("ParseScheme(%q): nil factory for valid scheme", name)
		}
		if _, err := SchemeFactory(name); err != nil {
			t.Fatalf("SchemeFactory(%q) = %v after ParseScheme accepted it", name, err)
		}
	})
}
