package sim

import (
	"testing"

	"bimodal/internal/dramcache"
	"bimodal/internal/workloads"
)

// quick returns options small enough for unit tests.
func quick() Options {
	return Options{AccessesPerCore: 4000, Seed: 3, CacheBytes: 4 << 20}
}

func TestSchemeFactoryKnownNames(t *testing.T) {
	for _, n := range SchemeNames() {
		f, err := SchemeFactory(n)
		if err != nil || f == nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		cfg := dramcache.DefaultConfig(4)
		cfg.CacheBytes = 1 << 20
		s := f(cfg)
		if s == nil || s.Name() == "" {
			t.Errorf("%s: bad scheme", n)
		}
	}
	if _, err := SchemeFactory("bogus"); err == nil {
		t.Error("unknown scheme accepted")
	}
	for _, extra := range []string{"bimodal-cometa", "bimodal-bypass"} {
		if _, err := SchemeFactory(extra); err != nil {
			t.Errorf("%s: %v", extra, err)
		}
	}
}

func TestRunProducesConsistentResult(t *testing.T) {
	mix := workloads.MustByName("Q7")
	f, _ := SchemeFactory("bimodal")
	res := Run(mix, f, quick())
	if res.Mix != "Q7" || len(res.PerCore) != 4 {
		t.Fatalf("result: %+v", res.Mix)
	}
	for _, c := range res.PerCore {
		if c.Accesses != 4000 || c.Cycles <= 0 {
			t.Errorf("core %d: %+v", c.Core, c)
		}
	}
	if res.Report.Accesses < 16000 {
		t.Errorf("scheme accesses = %d, want >= 16000 (finished cores keep running)", res.Report.Accesses)
	}
	if res.Energy.Total() <= 0 {
		t.Error("zero energy")
	}
	if res.TotalCycles() <= 0 {
		t.Error("zero total cycles")
	}
}

func TestRunDeterministic(t *testing.T) {
	mix := workloads.MustByName("Q1")
	f, _ := SchemeFactory("alloy")
	a := Run(mix, f, quick())
	b := Run(mix, f, quick())
	if a.TotalCycles() != b.TotalCycles() || a.Report.Hits != b.Report.Hits {
		t.Error("runs with identical options differ")
	}
}

func TestStandaloneFasterThanShared(t *testing.T) {
	mix := workloads.MustByName("Q1")
	f, _ := SchemeFactory("bimodal")
	o := quick()
	multi := Run(mix, f, o)
	single := RunStandalone(mix, f, o)
	if len(single) != 4 {
		t.Fatalf("standalone results = %d", len(single))
	}
	slower := 0
	for i := range single {
		if multi.PerCore[i].Cycles > single[i].Cycles {
			slower++
		}
	}
	if slower < 3 {
		t.Errorf("only %d/4 benchmarks slowed by sharing", slower)
	}
}

func TestANTTAboveOne(t *testing.T) {
	mix := workloads.MustByName("Q3")
	f, _ := SchemeFactory("bimodal")
	antt, res := ANTT(mix, f, quick())
	if antt <= 1.0 {
		t.Errorf("ANTT = %.3f; sharing should slow programs", antt)
	}
	if res.Report.Accesses == 0 {
		t.Error("empty multi run")
	}
}

func TestScaledCoreParams(t *testing.T) {
	p := ScaledCoreParams(128<<20, 4, 100_000)
	if p.AdaptInterval != 25_000 {
		t.Errorf("interval = %d, want 25000", p.AdaptInterval)
	}
	p = ScaledCoreParams(128<<20, 4, 1_000)
	if p.AdaptInterval != 10_000 {
		t.Errorf("interval floor = %d", p.AdaptInterval)
	}
	p = ScaledCoreParams(128<<20, 16, 10_000_000)
	if p.AdaptInterval != 1_000_000 {
		t.Errorf("interval cap = %d", p.AdaptInterval)
	}
}

func TestBiModalFactoryAppliesScaledInterval(t *testing.T) {
	o := quick()
	f := BiModalFactory(4, o)
	cfg := dramcache.DefaultConfig(4)
	cfg.CacheBytes = o.CacheBytes
	s := f(cfg).(*dramcache.BiModal)
	if s.Core().Params().AdaptInterval != 10_000 {
		t.Errorf("interval = %d", s.Core().Params().AdaptInterval)
	}
}

func TestPrefetcherIntegration(t *testing.T) {
	mix := workloads.MustByName("Q2")
	f, _ := SchemeFactory("bimodal")
	o := quick()
	o.PrefetchN = 1
	res := Run(mix, f, o)
	// Prefetches add scheme accesses beyond the demand traffic.
	noPf := Run(mix, f, quick())
	if res.Report.Accesses <= noPf.Report.Accesses {
		t.Errorf("accesses with prefetch = %d, without = %d", res.Report.Accesses, noPf.Report.Accesses)
	}
}

func TestConfigForOverride(t *testing.T) {
	mix := workloads.MustByName("Q1")
	cfg := ConfigFor(mix, Options{CacheBytes: 64 << 20, Seed: 9})
	if cfg.CacheBytes != 64<<20 || cfg.Seed != 9 {
		t.Errorf("config: %+v", cfg)
	}
	cfg = ConfigFor(mix, Options{})
	if cfg.CacheBytes != 128<<20 {
		t.Errorf("preset not applied: %+v", cfg)
	}
}
