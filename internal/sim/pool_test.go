package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"bimodal/internal/cpu"
	"bimodal/internal/dramcache"
	"bimodal/internal/energy"
	"bimodal/internal/workloads"
)

// runSim drives a Sim through the standard warmup+measure sequence.
func runSim(t *testing.T, s *Sim) RunResult {
	t.Helper()
	if err := s.Warmup(context.Background()); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	res, err := s.Measure(context.Background())
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	return res
}

// marshalResult serializes the comparable portion of a run result (the
// Scheme field is a live instance, not a value).
func marshalResult(r RunResult) ([]byte, error) {
	return json.Marshal(struct {
		Mix       string
		PerCore   []cpu.CoreResult
		PerTenant []cpu.TenantResult
		Report    dramcache.Report
		Energy    energy.Breakdown
	}{r.Mix, r.PerCore, r.PerTenant, r.Report, r.Energy})
}

func encodeResult(t *testing.T, r RunResult) []byte {
	t.Helper()
	b, err := marshalResult(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestPooledRunMatchesFresh is the reuse-safety golden test: for every
// registered scheme, a run on a pooled, Reset simulator must be
// byte-identical to a run on a freshly constructed one — including across
// a seed change, which exercises every re-seeding path.
func TestPooledRunMatchesFresh(t *testing.T) {
	mix := workloads.MustByName("Q1")
	for _, id := range SchemeIDs() {
		id := id
		t.Run(id.String(), func(t *testing.T) {
			o1 := Options{AccessesPerCore: 1500, Seed: 5, CacheBytes: 2 << 20}
			o2 := o1
			o2.Seed = 9
			factory := id.Factory()

			fresh1 := encodeResult(t, runSim(t, NewSim(mix, factory, o1)))
			fresh2 := encodeResult(t, runSim(t, NewSim(mix, factory, o2)))
			if bytes.Equal(fresh1, fresh2) {
				t.Fatalf("seeds 5 and 9 produced identical results; seed change is not observable")
			}

			pool := NewRunPool(2)
			s := pool.Get(id.String(), mix, factory, o1)
			if got := encodeResult(t, runSim(t, s)); !bytes.Equal(got, fresh1) {
				t.Errorf("first pooled run diverges from fresh run")
			}
			pool.Put(s)

			s2 := pool.Get(id.String(), mix, factory, o2)
			if hits, _ := pool.Stats(); hits != 1 {
				t.Fatalf("second Get was not served by reuse (hits=%d): Reset declined", hits)
			}
			if got := encodeResult(t, runSim(t, s2)); !bytes.Equal(got, fresh2) {
				t.Errorf("reused run (seed %d after seed %d) diverges from fresh run", o2.Seed, o1.Seed)
			}
			pool.Put(s2)
		})
	}
}

// TestRunPoolGeometryMismatch verifies a changed geometry never reuses a
// simulator (distinct key), and a direct Reset with changed geometry
// declines.
func TestRunPoolGeometryMismatch(t *testing.T) {
	mix := workloads.MustByName("Q1")
	factory := SchemeBiModal.Factory()
	o := Options{AccessesPerCore: 500, Seed: 1, CacheBytes: 2 << 20}
	pool := NewRunPool(4)

	s := pool.Get("bimodal", mix, factory, o)
	runSim(t, s)
	pool.Put(s)

	bigger := o
	bigger.CacheBytes = 4 << 20
	if s.Reset(mix, factory, bigger) {
		t.Error("Reset accepted a geometry change")
	}
	s2 := pool.Get("bimodal", mix, factory, bigger)
	if hits, _ := pool.Stats(); hits != 0 {
		t.Errorf("geometry change was served from the pool (hits=%d)", hits)
	}
	runSim(t, s2)
}

// TestRunPoolConcurrent hammers one shared pool from concurrent workers —
// the service's usage pattern — and checks every pooled result against the
// serially computed fresh result for its (scheme, seed) cell. Run with
// -race this also proves the pool's synchronization.
func TestRunPoolConcurrent(t *testing.T) {
	mix := workloads.MustByName("Q1")
	schemes := []SchemeID{SchemeBiModal, SchemeAlloy}
	seeds := []uint64{2, 11}
	base := Options{AccessesPerCore: 400, CacheBytes: 1 << 20}

	want := make(map[string][]byte)
	for _, id := range schemes {
		for _, seed := range seeds {
			o := base
			o.Seed = seed
			key := fmt.Sprintf("%s/%d", id, seed)
			want[key] = encodeResult(t, runSim(t, NewSim(mix, id.Factory(), o)))
		}
	}

	pool := NewRunPool(4)
	const workers = 4
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := schemes[(w+i)%len(schemes)]
				seed := seeds[i%len(seeds)]
				o := base
				o.Seed = seed
				s := pool.Get(id.String(), mix, id.Factory(), o)
				if err := s.Warmup(context.Background()); err != nil {
					errs <- err
					return
				}
				res, err := s.Measure(context.Background())
				if err != nil {
					errs <- err
					return
				}
				got, err := marshalResult(res)
				if err != nil {
					errs <- err
					return
				}
				key := fmt.Sprintf("%s/%d", id, seed)
				if !bytes.Equal(got, want[key]) {
					errs <- fmt.Errorf("worker %d iter %d: pooled %s diverges from fresh", w, i, key)
					return
				}
				pool.Put(s)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	hits, misses := pool.Stats()
	if hits == 0 {
		t.Errorf("no pooled reuse happened (hits=%d misses=%d)", hits, misses)
	}
}
