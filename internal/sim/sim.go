// Package sim assembles full-system simulations: a workload mix, a DRAM
// cache scheme, the multi-core engine and (optionally) the next-N-lines
// prefetcher, plus the standalone runs needed for ANTT.
package sim

import (
	"context"

	"bimodal/internal/core"
	"bimodal/internal/cpu"
	"bimodal/internal/dramcache"
	"bimodal/internal/energy"
	"bimodal/internal/engine"
	"bimodal/internal/trace"
	"bimodal/internal/workloads"
)

// Factory builds a fresh scheme instance from a configuration. Every run
// (multiprogrammed or standalone) gets its own instance so cache state
// never leaks between runs.
type Factory func(cfg dramcache.Config) dramcache.Scheme

// Options configures a run.
type Options struct {
	// AccessesPerCore is the per-core replay quota.
	AccessesPerCore int64
	// Seed decorrelates reruns (generators, replacement randomness).
	Seed uint64
	// CacheBytes overrides the preset DRAM cache size when non-zero.
	CacheBytes uint64
	// CacheDivisor scales the preset cache size down when CacheBytes is
	// zero. The paper warms 128-512MB caches with multi-billion-access
	// traces; affordable replays reach the same steady state (footprint
	// much larger than capacity, evictions training the predictors) by
	// shrinking capacity proportionally instead. 0 or 1 disables.
	CacheDivisor uint64
	// WarmupPerCore is the unmeasured warmup quota preceding the measured
	// window (the paper fast-forwards before collecting statistics).
	// 0 selects AccessesPerCore (1:1 warmup); negative disables warmup.
	WarmupPerCore int64
	// CoreCfg is the core timing model; zero value selects the default.
	CoreCfg cpu.CoreConfig
	// PrefetchN enables the next-N-lines prefetcher when positive.
	PrefetchN int
	// Workers bounds the fan-out of the independent simulations inside
	// one call (the per-benchmark standalone runs of RunStandalone/ANTT).
	// 0 or 1 runs them serially; results are collected in mix order either
	// way, so the output is identical at any worker count.
	Workers int
}

// normalize fills defaults.
func (o Options) normalize() Options {
	if o.AccessesPerCore == 0 {
		o.AccessesPerCore = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CoreCfg.MSHRs == 0 {
		o.CoreCfg = cpu.DefaultCoreConfig()
	}
	if o.WarmupPerCore == 0 {
		o.WarmupPerCore = o.AccessesPerCore
	}
	if o.WarmupPerCore < 0 {
		o.WarmupPerCore = 0
	}
	return o
}

// ConfigFor derives the scheme configuration for a mix under the options.
func ConfigFor(mix workloads.Mix, o Options) dramcache.Config {
	o = o.normalize()
	cfg := dramcache.DefaultConfig(mix.Cores())
	if o.CacheBytes != 0 {
		cfg.CacheBytes = o.CacheBytes
	} else if o.CacheDivisor > 1 {
		cfg.CacheBytes /= o.CacheDivisor
	}
	cfg.Seed = o.Seed
	return cfg
}

// RunResult reports one multiprogrammed run.
type RunResult struct {
	Mix     string
	PerCore []cpu.CoreResult
	// PerTenant attributes the measured window to tenant streams, indexed
	// by tenant ID; nil for single-tenant mixes.
	PerTenant []cpu.TenantResult
	Report    dramcache.Report
	Energy    energy.Breakdown
	// Scheme retains the instance for scheme-specific inspection (e.g.
	// the Bi-Modal core cache).
	Scheme dramcache.Scheme
}

// TotalCycles returns the longest core runtime.
func (r RunResult) TotalCycles() int64 {
	var m int64
	for _, c := range r.PerCore {
		if c.Cycles > m {
			m = c.Cycles
		}
	}
	return m
}

// Run executes the mix on a fresh scheme from factory.
func Run(mix workloads.Mix, factory Factory, o Options) RunResult {
	res, err := RunContext(context.Background(), mix, factory, o)
	if err != nil {
		// Background contexts never cancel; any error here is a bug.
		panic(err)
	}
	return res
}

// RunContext executes the mix on a fresh scheme from factory, honoring
// cancellation: when ctx ends mid-run the simulation stops within a few
// thousand accesses and ctx.Err() is returned. The result is a pure
// function of (mix, factory, o) — never of ctx or timing.
func RunContext(ctx context.Context, mix workloads.Mix, factory Factory, o Options) (RunResult, error) {
	s := NewSim(mix, factory, o)
	if err := s.Warmup(ctx); err != nil {
		return RunResult{}, err
	}
	return s.Measure(ctx)
}

// RunStandalone runs each benchmark of the mix alone on the same machine
// configuration (fresh scheme per benchmark) and returns the per-core
// results in mix order — the C^SP terms of ANTT.
func RunStandalone(mix workloads.Mix, factory Factory, o Options) []cpu.CoreResult {
	out, err := RunStandaloneContext(context.Background(), mix, factory, o)
	if err != nil {
		panic(err)
	}
	return out
}

// RunStandaloneContext is RunStandalone with cancellation. The standalone
// runs are fully independent (fresh scheme and generator each), so they
// fan out over o.Workers goroutines; results land in mix order regardless
// of worker count, keeping parallel output identical to serial.
func RunStandaloneContext(ctx context.Context, mix workloads.Mix, factory Factory, o Options) ([]cpu.CoreResult, error) {
	o = o.normalize()
	return engine.Map(ctx, o.Workers, mix.Cores(), func(ctx context.Context, i int) (cpu.CoreResult, error) {
		return standaloneOne(ctx, mix, factory, o, i)
	})
}

// soloGenerator re-labels a generator for standalone runs (core 0).
type soloGenerator struct{ trace.Generator }

// ANTT runs the mix multiprogrammed and standalone under both, returning
// the ANTT value and the multiprogrammed result.
func ANTT(mix workloads.Mix, factory Factory, o Options) (float64, RunResult) {
	antt, multi, err := ANTTContext(context.Background(), mix, factory, o)
	if err != nil {
		panic(err)
	}
	return antt, multi
}

// ANTTContext is ANTT with cancellation. The multiprogrammed run and the
// per-benchmark standalone runs are all independent simulations; with
// o.Workers > 1 they execute concurrently (the multiprogrammed run as one
// cell beside the standalone cells).
func ANTTContext(ctx context.Context, mix workloads.Mix, factory Factory, o Options) (float64, RunResult, error) {
	o = o.normalize()
	if o.Workers <= 1 {
		multi, err := RunContext(ctx, mix, factory, o)
		if err != nil {
			return 0, RunResult{}, err
		}
		single, err := RunStandaloneContext(ctx, mix, factory, o)
		if err != nil {
			return 0, RunResult{}, err
		}
		return cpu.ANTT(multi.PerCore, single), multi, nil
	}
	var multi RunResult
	single := make([]cpu.CoreResult, mix.Cores())
	// Cell 0 is the multiprogrammed run; cells 1..n are the standalones.
	_, err := engine.Map(ctx, o.Workers, mix.Cores()+1, func(ctx context.Context, i int) (struct{}, error) {
		if i == 0 {
			m, err := RunContext(ctx, mix, factory, o)
			if err != nil {
				return struct{}{}, err
			}
			multi = m
			return struct{}{}, nil
		}
		so := o
		so.Workers = 1
		out, err := standaloneOne(ctx, mix, factory, so, i-1)
		if err != nil {
			return struct{}{}, err
		}
		single[i-1] = out
		return struct{}{}, nil
	})
	if err != nil {
		return 0, RunResult{}, err
	}
	return cpu.ANTT(multi.PerCore, single), multi, nil
}

// standaloneOne runs benchmark i of the mix alone (one ANTT C^SP term).
func standaloneOne(ctx context.Context, mix workloads.Mix, factory Factory, o Options, i int) (cpu.CoreResult, error) {
	cfg := ConfigFor(mix, o)
	g := mix.Generators(o.Seed)[i]
	scheme := factory(cfg)
	var pf *cpu.Prefetcher
	if o.PrefetchN > 0 {
		pf = cpu.NewPrefetcher(o.PrefetchN, 1)
	}
	eng := cpu.NewEngine(scheme, []trace.Generator{soloGenerator{Generator: g}}, o.CoreCfg, pf)
	res, err := eng.RunMeasuredContext(ctx, o.WarmupPerCore, o.AccessesPerCore)
	if err != nil {
		return cpu.CoreResult{}, err
	}
	r := res[0]
	r.Core = i
	return r, nil
}

// ScaledCoreParams returns the paper's core parameters for a cache size
// with the adaptation interval scaled to the run length: the paper adapts
// every 1M cache accesses over multi-billion-access traces; shorter replays
// keep the same number of adaptation opportunities by scaling the interval
// to 1/16 of the total expected accesses (min 10k).
func ScaledCoreParams(cacheBytes uint64, cores int, accessesPerCore int64) core.Params {
	p := core.DefaultParams(cacheBytes)
	interval := accessesPerCore * int64(cores) / 16
	if interval < 10_000 {
		interval = 10_000
	}
	if interval > p.AdaptInterval {
		interval = p.AdaptInterval
	}
	p.AdaptInterval = interval
	// Trace-length compensation (documented in DESIGN.md): the paper
	// trains a 2^16-entry predictor from ~4%-sampled evictions over
	// billions of accesses. Short replays keep the same *training density*
	// (updates per counter) by sampling 1/16 of sets and using a 2^12-entry
	// table; the structures and policies are unchanged.
	p.SampleShift = 4
	p.PredictorBits = 12
	return p
}

// BiModalFactory returns a factory building BiModal with the adaptation
// interval scaled for the run length and any extra options applied.
func BiModalFactory(cores int, o Options, opts ...dramcache.BiModalOption) Factory {
	o = o.normalize()
	return func(cfg dramcache.Config) dramcache.Scheme {
		p := ScaledCoreParams(cfg.CacheBytes, cores, o.AccessesPerCore)
		all := append([]dramcache.BiModalOption{dramcache.WithCoreParams(p)}, opts...)
		return dramcache.NewBiModal(cfg, all...)
	}
}
