// Package sim assembles full-system simulations: a workload mix, a DRAM
// cache scheme, the multi-core engine and (optionally) the next-N-lines
// prefetcher, plus the standalone runs needed for ANTT.
package sim

import (
	"fmt"

	"bimodal/internal/core"
	"bimodal/internal/cpu"
	"bimodal/internal/dramcache"
	"bimodal/internal/energy"
	"bimodal/internal/trace"
	"bimodal/internal/workloads"
)

// Factory builds a fresh scheme instance from a configuration. Every run
// (multiprogrammed or standalone) gets its own instance so cache state
// never leaks between runs.
type Factory func(cfg dramcache.Config) dramcache.Scheme

// SchemeFactory returns the factory for a scheme name. Known names:
// bimodal, bimodal-only, wl-only, bimodal-cometa, alloy, lohhill, atcache,
// footprint.
func SchemeFactory(name string) (Factory, error) {
	switch name {
	case "bimodal":
		return func(cfg dramcache.Config) dramcache.Scheme { return dramcache.NewBiModal(cfg) }, nil
	case "bimodal-only":
		return func(cfg dramcache.Config) dramcache.Scheme {
			return dramcache.NewBiModal(cfg, dramcache.WithoutLocator())
		}, nil
	case "wl-only":
		return func(cfg dramcache.Config) dramcache.Scheme {
			return dramcache.NewBiModal(cfg, dramcache.FixedBigBlocks())
		}, nil
	case "bimodal-cometa":
		return func(cfg dramcache.Config) dramcache.Scheme {
			return dramcache.NewBiModal(cfg, dramcache.CoLocatedMetadata(), dramcache.WithName("BiModalCoMeta"))
		}, nil
	case "bimodal-bypass":
		return func(cfg dramcache.Config) dramcache.Scheme {
			return dramcache.NewBiModal(cfg, dramcache.WithPrefetchBypass(), dramcache.WithName("BiModalPrefBypass"))
		}, nil
	case "alloy":
		return func(cfg dramcache.Config) dramcache.Scheme { return dramcache.NewAlloy(cfg) }, nil
	case "lohhill":
		return func(cfg dramcache.Config) dramcache.Scheme { return dramcache.NewLohHill(cfg) }, nil
	case "atcache":
		return func(cfg dramcache.Config) dramcache.Scheme { return dramcache.NewATCache(cfg) }, nil
	case "footprint":
		return func(cfg dramcache.Config) dramcache.Scheme { return dramcache.NewFootprint(cfg) }, nil
	default:
		return nil, fmt.Errorf("sim: unknown scheme %q", name)
	}
}

// SchemeNames lists the factory names in comparison order.
func SchemeNames() []string {
	return []string{"bimodal", "bimodal-only", "wl-only", "alloy", "lohhill", "atcache", "footprint"}
}

// Options configures a run.
type Options struct {
	// AccessesPerCore is the per-core replay quota.
	AccessesPerCore int64
	// Seed decorrelates reruns (generators, replacement randomness).
	Seed uint64
	// CacheBytes overrides the preset DRAM cache size when non-zero.
	CacheBytes uint64
	// CacheDivisor scales the preset cache size down when CacheBytes is
	// zero. The paper warms 128-512MB caches with multi-billion-access
	// traces; affordable replays reach the same steady state (footprint
	// much larger than capacity, evictions training the predictors) by
	// shrinking capacity proportionally instead. 0 or 1 disables.
	CacheDivisor uint64
	// WarmupPerCore is the unmeasured warmup quota preceding the measured
	// window (the paper fast-forwards before collecting statistics).
	// 0 selects AccessesPerCore (1:1 warmup); negative disables warmup.
	WarmupPerCore int64
	// CoreCfg is the core timing model; zero value selects the default.
	CoreCfg cpu.CoreConfig
	// PrefetchN enables the next-N-lines prefetcher when positive.
	PrefetchN int
	// BiModalOptions are applied when the factory builds a BiModal (they
	// are encoded into the factory by the caller; present here only for
	// documentation of the pattern).
}

// normalize fills defaults.
func (o Options) normalize() Options {
	if o.AccessesPerCore == 0 {
		o.AccessesPerCore = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CoreCfg.MSHRs == 0 {
		o.CoreCfg = cpu.DefaultCoreConfig()
	}
	if o.WarmupPerCore == 0 {
		o.WarmupPerCore = o.AccessesPerCore
	}
	if o.WarmupPerCore < 0 {
		o.WarmupPerCore = 0
	}
	return o
}

// ConfigFor derives the scheme configuration for a mix under the options.
func ConfigFor(mix workloads.Mix, o Options) dramcache.Config {
	o = o.normalize()
	cfg := dramcache.DefaultConfig(mix.Cores())
	if o.CacheBytes != 0 {
		cfg.CacheBytes = o.CacheBytes
	} else if o.CacheDivisor > 1 {
		cfg.CacheBytes /= o.CacheDivisor
	}
	cfg.Seed = o.Seed
	return cfg
}

// RunResult reports one multiprogrammed run.
type RunResult struct {
	Mix     string
	PerCore []cpu.CoreResult
	Report  dramcache.Report
	Energy  energy.Breakdown
	// Scheme retains the instance for scheme-specific inspection (e.g.
	// the Bi-Modal core cache).
	Scheme dramcache.Scheme
}

// TotalCycles returns the longest core runtime.
func (r RunResult) TotalCycles() int64 {
	var m int64
	for _, c := range r.PerCore {
		if c.Cycles > m {
			m = c.Cycles
		}
	}
	return m
}

// Run executes the mix on a fresh scheme from factory.
func Run(mix workloads.Mix, factory Factory, o Options) RunResult {
	o = o.normalize()
	cfg := ConfigFor(mix, o)
	scheme := factory(cfg)
	var pf *cpu.Prefetcher
	if o.PrefetchN > 0 {
		pf = cpu.NewPrefetcher(o.PrefetchN, mix.Cores())
	}
	engine := cpu.NewEngine(scheme, mix.Generators(o.Seed), o.CoreCfg, pf)
	per := engine.RunMeasured(o.WarmupPerCore, o.AccessesPerCore)
	rep := scheme.Report()
	return RunResult{
		Mix:     mix.Name,
		PerCore: per,
		Report:  rep,
		Energy:  energy.Compute(rep, energy.Default()),
		Scheme:  scheme,
	}
}

// RunStandalone runs each benchmark of the mix alone on the same machine
// configuration (fresh scheme per benchmark) and returns the per-core
// results in mix order — the C^SP terms of ANTT.
func RunStandalone(mix workloads.Mix, factory Factory, o Options) []cpu.CoreResult {
	o = o.normalize()
	cfg := ConfigFor(mix, o)
	gens := mix.Generators(o.Seed)
	out := make([]cpu.CoreResult, len(gens))
	for i, g := range gens {
		scheme := factory(cfg)
		var pf *cpu.Prefetcher
		if o.PrefetchN > 0 {
			pf = cpu.NewPrefetcher(o.PrefetchN, 1)
		}
		solo := soloGenerator{Generator: g}
		engine := cpu.NewEngine(scheme, []trace.Generator{solo}, o.CoreCfg, pf)
		res := engine.RunMeasured(o.WarmupPerCore, o.AccessesPerCore)
		out[i] = res[0]
		out[i].Core = i
	}
	return out
}

// soloGenerator re-labels a generator for standalone runs (core 0).
type soloGenerator struct{ trace.Generator }

// ANTT runs the mix multiprogrammed and standalone under both, returning
// the ANTT value and the multiprogrammed result.
func ANTT(mix workloads.Mix, factory Factory, o Options) (float64, RunResult) {
	multi := Run(mix, factory, o)
	single := RunStandalone(mix, factory, o)
	return cpu.ANTT(multi.PerCore, single), multi
}

// ScaledCoreParams returns the paper's core parameters for a cache size
// with the adaptation interval scaled to the run length: the paper adapts
// every 1M cache accesses over multi-billion-access traces; shorter replays
// keep the same number of adaptation opportunities by scaling the interval
// to 1/16 of the total expected accesses (min 10k).
func ScaledCoreParams(cacheBytes uint64, cores int, accessesPerCore int64) core.Params {
	p := core.DefaultParams(cacheBytes)
	interval := accessesPerCore * int64(cores) / 16
	if interval < 10_000 {
		interval = 10_000
	}
	if interval > p.AdaptInterval {
		interval = p.AdaptInterval
	}
	p.AdaptInterval = interval
	// Trace-length compensation (documented in DESIGN.md): the paper
	// trains a 2^16-entry predictor from ~4%-sampled evictions over
	// billions of accesses. Short replays keep the same *training density*
	// (updates per counter) by sampling 1/16 of sets and using a 2^12-entry
	// table; the structures and policies are unchanged.
	p.SampleShift = 4
	p.PredictorBits = 12
	return p
}

// BiModalFactory returns a factory building BiModal with the adaptation
// interval scaled for the run length and any extra options applied.
func BiModalFactory(cores int, o Options, opts ...dramcache.BiModalOption) Factory {
	o = o.normalize()
	return func(cfg dramcache.Config) dramcache.Scheme {
		p := ScaledCoreParams(cfg.CacheBytes, cores, o.AccessesPerCore)
		all := append([]dramcache.BiModalOption{dramcache.WithCoreParams(p)}, opts...)
		return dramcache.NewBiModal(cfg, all...)
	}
}
