package sim

import (
	"fmt"

	"bimodal/internal/spec"
)

// SchemeID identifies a DRAM cache scheme configuration. The typed
// constants are a thin shim over the scheme registry (internal/spec):
// parsing, naming and factories all delegate to the registered
// descriptors, so new schemes and variants are added by registering a
// descriptor, not by growing a switch. The string forms remain the
// CLI/serialization surface via ParseScheme and String.
type SchemeID int

const (
	// SchemeBiModal is the paper's full design: bi-modal sets + way
	// locator + separate metadata bank.
	SchemeBiModal SchemeID = iota
	// SchemeBiModalOnly is the bi-modality ablation (no way locator).
	SchemeBiModalOnly
	// SchemeWLOnly is the way-locator ablation (fixed 512B blocks).
	SchemeWLOnly
	// SchemeBiModalCoMeta co-locates tags with data (Figure 9b baseline).
	SchemeBiModalCoMeta
	// SchemeBiModalBypass bypasses the cache on prefetch misses (Table VI).
	SchemeBiModalBypass
	// SchemeAlloy is the AlloyCache direct-mapped TAD baseline.
	SchemeAlloy
	// SchemeLohHill is the Loh-Hill compound-access baseline.
	SchemeLohHill
	// SchemeATCache is the SRAM tag-cache baseline.
	SchemeATCache
	// SchemeFootprint is the Footprint Cache baseline.
	SchemeFootprint

	numSchemes // sentinel; keep last
)

// schemeNames maps IDs to their canonical names, in comparison order.
// idByName inverts it, including every registry alias, making ParseScheme
// a map lookup instead of a linear scan.
var (
	schemeNames [numSchemes]string
	idByName    map[string]SchemeID
)

func init() {
	names := spec.Names()
	if len(names) != int(numSchemes) {
		panic(fmt.Sprintf("sim: registry has %d schemes, SchemeID has %d", len(names), numSchemes))
	}
	idByName = make(map[string]SchemeID, len(names))
	for i, d := range spec.Descriptors() {
		schemeNames[i] = d.Name
		idByName[d.Name] = SchemeID(i)
		for _, a := range d.Aliases {
			idByName[a] = SchemeID(i)
		}
	}
}

// String returns the canonical name ("bimodal", "alloy", ...).
func (id SchemeID) String() string {
	if !id.Valid() {
		return fmt.Sprintf("SchemeID(%d)", int(id))
	}
	return schemeNames[id]
}

// Valid reports whether id names a known scheme.
func (id SchemeID) Valid() bool { return id >= 0 && id < numSchemes }

// ParseScheme resolves a scheme name or registry alias to its typed ID.
// Unknown names fail with the registry's known-name list and a
// nearest-name suggestion.
func ParseScheme(name string) (SchemeID, error) {
	if id, ok := idByName[name]; ok {
		return id, nil
	}
	_, err := spec.Lookup(name)
	return -1, err
}

// Descriptor returns the registry descriptor backing the ID.
func (id SchemeID) Descriptor() spec.Descriptor {
	if !id.Valid() {
		panic("sim: Descriptor on invalid " + id.String())
	}
	d, err := spec.Lookup(schemeNames[id])
	if err != nil {
		panic(err) // unreachable: every ID is registry-backed by init
	}
	return d
}

// Factory returns the builder for the scheme. Every valid ID has a
// factory; invalid IDs panic (use ParseScheme to validate input).
func (id SchemeID) Factory() Factory {
	return Factory(id.Descriptor().Factory())
}

// SchemeIDs lists every scheme in comparison order.
func SchemeIDs() []SchemeID {
	ids := make([]SchemeID, numSchemes)
	for i := range ids {
		ids[i] = SchemeID(i)
	}
	return ids
}

// SchemeNames lists every canonical scheme name in comparison order
// (including the bimodal-cometa and bimodal-bypass variants; aliases are
// accepted by ParseScheme but not listed).
func SchemeNames() []string {
	out := make([]string, numSchemes)
	copy(out, schemeNames[:])
	return out
}

// SchemeFactory returns the factory for a scheme name. It is the
// stringly-typed shim over ParseScheme + SchemeID.Factory kept for CLI
// call sites and backward compatibility.
func SchemeFactory(name string) (Factory, error) {
	id, err := ParseScheme(name)
	if err != nil {
		return nil, err
	}
	return id.Factory(), nil
}
