package sim

import (
	"fmt"

	"bimodal/internal/dramcache"
)

// SchemeID identifies a DRAM cache scheme configuration. The typed
// constants replace stringly-typed scheme names in library code; the
// string forms remain the CLI/serialization surface via ParseScheme and
// String.
type SchemeID int

const (
	// SchemeBiModal is the paper's full design: bi-modal sets + way
	// locator + separate metadata bank.
	SchemeBiModal SchemeID = iota
	// SchemeBiModalOnly is the bi-modality ablation (no way locator).
	SchemeBiModalOnly
	// SchemeWLOnly is the way-locator ablation (fixed 512B blocks).
	SchemeWLOnly
	// SchemeBiModalCoMeta co-locates tags with data (Figure 9b baseline).
	SchemeBiModalCoMeta
	// SchemeBiModalBypass bypasses the cache on prefetch misses (Table VI).
	SchemeBiModalBypass
	// SchemeAlloy is the AlloyCache direct-mapped TAD baseline.
	SchemeAlloy
	// SchemeLohHill is the Loh-Hill compound-access baseline.
	SchemeLohHill
	// SchemeATCache is the SRAM tag-cache baseline.
	SchemeATCache
	// SchemeFootprint is the Footprint Cache baseline.
	SchemeFootprint

	numSchemes // sentinel; keep last
)

// schemeNames maps IDs to their canonical CLI names, in comparison order.
var schemeNames = [numSchemes]string{
	SchemeBiModal:       "bimodal",
	SchemeBiModalOnly:   "bimodal-only",
	SchemeWLOnly:        "wl-only",
	SchemeBiModalCoMeta: "bimodal-cometa",
	SchemeBiModalBypass: "bimodal-bypass",
	SchemeAlloy:         "alloy",
	SchemeLohHill:       "lohhill",
	SchemeATCache:       "atcache",
	SchemeFootprint:     "footprint",
}

// String returns the canonical name ("bimodal", "alloy", ...).
func (id SchemeID) String() string {
	if !id.Valid() {
		return fmt.Sprintf("SchemeID(%d)", int(id))
	}
	return schemeNames[id]
}

// Valid reports whether id names a known scheme.
func (id SchemeID) Valid() bool { return id >= 0 && id < numSchemes }

// ParseScheme resolves a scheme name to its typed ID.
func ParseScheme(name string) (SchemeID, error) {
	for id, n := range schemeNames {
		if n == name {
			return SchemeID(id), nil
		}
	}
	return -1, fmt.Errorf("sim: unknown scheme %q (known: %v)", name, SchemeNames())
}

// Factory returns the builder for the scheme. Every valid ID has a
// factory; invalid IDs panic (use ParseScheme to validate input).
func (id SchemeID) Factory() Factory {
	switch id {
	case SchemeBiModal:
		return func(cfg dramcache.Config) dramcache.Scheme { return dramcache.NewBiModal(cfg) }
	case SchemeBiModalOnly:
		return func(cfg dramcache.Config) dramcache.Scheme {
			return dramcache.NewBiModal(cfg, dramcache.WithoutLocator())
		}
	case SchemeWLOnly:
		return func(cfg dramcache.Config) dramcache.Scheme {
			return dramcache.NewBiModal(cfg, dramcache.FixedBigBlocks())
		}
	case SchemeBiModalCoMeta:
		return func(cfg dramcache.Config) dramcache.Scheme {
			return dramcache.NewBiModal(cfg, dramcache.CoLocatedMetadata(), dramcache.WithName("BiModalCoMeta"))
		}
	case SchemeBiModalBypass:
		return func(cfg dramcache.Config) dramcache.Scheme {
			return dramcache.NewBiModal(cfg, dramcache.WithPrefetchBypass(), dramcache.WithName("BiModalPrefBypass"))
		}
	case SchemeAlloy:
		return func(cfg dramcache.Config) dramcache.Scheme { return dramcache.NewAlloy(cfg) }
	case SchemeLohHill:
		return func(cfg dramcache.Config) dramcache.Scheme { return dramcache.NewLohHill(cfg) }
	case SchemeATCache:
		return func(cfg dramcache.Config) dramcache.Scheme { return dramcache.NewATCache(cfg) }
	case SchemeFootprint:
		return func(cfg dramcache.Config) dramcache.Scheme { return dramcache.NewFootprint(cfg) }
	default:
		panic("sim: Factory on invalid " + id.String())
	}
}

// SchemeIDs lists every scheme in comparison order.
func SchemeIDs() []SchemeID {
	ids := make([]SchemeID, numSchemes)
	for i := range ids {
		ids[i] = SchemeID(i)
	}
	return ids
}

// SchemeNames lists every scheme name in comparison order (including the
// bimodal-cometa and bimodal-bypass variants).
func SchemeNames() []string {
	out := make([]string, numSchemes)
	copy(out, schemeNames[:])
	return out
}

// SchemeFactory returns the factory for a scheme name. It is the
// stringly-typed shim over ParseScheme + SchemeID.Factory kept for CLI
// call sites and backward compatibility.
func SchemeFactory(name string) (Factory, error) {
	id, err := ParseScheme(name)
	if err != nil {
		return nil, err
	}
	return id.Factory(), nil
}
