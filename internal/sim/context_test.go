package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"bimodal/internal/dramcache"
	"bimodal/internal/workloads"
)

func TestParseScheme(t *testing.T) {
	for _, id := range SchemeIDs() {
		got, err := ParseScheme(id.String())
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", id, err)
		}
		if got != id {
			t.Errorf("ParseScheme(%q) = %v, want %v", id, got, id)
		}
		if !id.Valid() {
			t.Errorf("%v.Valid() = false", id)
		}
	}
	if _, err := ParseScheme("no-such-scheme"); err == nil {
		t.Error("ParseScheme accepted an unknown name")
	}
	if SchemeID(-1).Valid() || SchemeID(int(numSchemes)).Valid() {
		t.Error("out-of-range SchemeID reported valid")
	}
}

// TestSchemeNamesComplete pins the regression where bimodal-cometa and
// bimodal-bypass were missing from the listing.
func TestSchemeNamesComplete(t *testing.T) {
	names := SchemeNames()
	if len(names) != int(numSchemes) {
		t.Fatalf("SchemeNames() has %d entries, want %d", len(names), numSchemes)
	}
	want := map[string]bool{"bimodal-cometa": false, "bimodal-bypass": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("SchemeNames() missing %q", n)
		}
	}
}

func TestSchemeFactoryShim(t *testing.T) {
	f, err := SchemeFactory("alloy")
	if err != nil {
		t.Fatal(err)
	}
	if s := f(dramcache.DefaultConfig(4)); s.Name() != "AlloyCache" {
		t.Errorf("factory built %q, want AlloyCache", s.Name())
	}
	if _, err := SchemeFactory("bogus"); err == nil {
		t.Error("SchemeFactory accepted an unknown name")
	}
}

func TestRunContextCancelled(t *testing.T) {
	mix := workloads.MustByName("Q1")
	o := Options{AccessesPerCore: 50_000_000, Seed: 1, CacheDivisor: 8}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, mix, SchemeAlloy.Factory(), o); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestRunStandaloneContextParallelMatchesSerial(t *testing.T) {
	mix := workloads.MustByName("Q3")
	o := Options{AccessesPerCore: 2_000, Seed: 7, CacheDivisor: 8}
	o.Workers = 1
	serial, err := RunStandaloneContext(context.Background(), mix, SchemeAlloy.Factory(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.NumCPU()} {
		o.Workers = workers
		got, err := RunStandaloneContext(context.Background(), mix, SchemeAlloy.Factory(), o)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if !reflect.DeepEqual(serial[i], got[i]) {
				t.Errorf("workers=%d: standalone run %d differs from serial", workers, i)
			}
		}
	}
}

func TestANTTContextParallelMatchesSerial(t *testing.T) {
	mix := workloads.MustByName("Q2")
	o := Options{AccessesPerCore: 2_000, Seed: 3, CacheDivisor: 8}
	o.Workers = 1
	serialANTT, serialMulti, err := ANTTContext(context.Background(), mix, SchemeAlloy.Factory(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = runtime.NumCPU()
	parANTT, parMulti, err := ANTTContext(context.Background(), mix, SchemeAlloy.Factory(), o)
	if err != nil {
		t.Fatal(err)
	}
	if serialANTT != parANTT {
		t.Errorf("ANTT: serial %v != parallel %v", serialANTT, parANTT)
	}
	serialMulti.Scheme, parMulti.Scheme = nil, nil
	if !reflect.DeepEqual(serialMulti, parMulti) {
		t.Error("multiprogrammed result differs between serial and parallel ANTT")
	}
}

func TestANTTContextCancelled(t *testing.T) {
	mix := workloads.MustByName("Q1")
	o := Options{AccessesPerCore: 50_000_000, Seed: 1, CacheDivisor: 8, Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ANTTContext(ctx, mix, SchemeAlloy.Factory(), o); !errors.Is(err, context.Canceled) {
		t.Errorf("ANTTContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
}
