package sim

import (
	"bytes"
	"context"
	"testing"

	"bimodal/internal/engine"
	"bimodal/internal/workloads"
)

// dcOptions keeps the multi-tenant tests fast while still crossing the
// warmup/measure boundary.
func dcOptions() Options {
	return Options{AccessesPerCore: 2000, Seed: 5, CacheBytes: 2 << 20}
}

// TestDCMixPerTenantResults checks a multi-tenant run attributes the
// measured window to every tenant and that the attribution is consistent
// with the per-core totals.
func TestDCMixPerTenantResults(t *testing.T) {
	mix := workloads.MustByName("DC4")
	res := Run(mix, SchemeBiModal.Factory(), dcOptions())
	if len(res.PerTenant) != 4 {
		t.Fatalf("PerTenant has %d entries, want 4", len(res.PerTenant))
	}
	var tenantAcc, coreAcc int64
	for i, tr := range res.PerTenant {
		if tr.Tenant != i {
			t.Errorf("entry %d has tenant ID %d", i, tr.Tenant)
		}
		if tr.Accesses == 0 {
			t.Errorf("tenant %d has no attributed accesses", i)
		}
		if tr.Hits > tr.Accesses || tr.Reads > tr.Accesses {
			t.Errorf("tenant %d counters inconsistent: %+v", i, tr)
		}
		tenantAcc += tr.Accesses
	}
	for _, pc := range res.PerCore {
		coreAcc += pc.Accesses
	}
	if tenantAcc != coreAcc {
		t.Errorf("tenant accesses sum to %d, core accesses to %d", tenantAcc, coreAcc)
	}
}

// TestSingleTenantMixHasNoPerTenant checks classic mixes stay exactly as
// before: no per-tenant attribution is reported (or paid for).
func TestSingleTenantMixHasNoPerTenant(t *testing.T) {
	res := Run(workloads.MustByName("Q1"), SchemeAlloy.Factory(), dcOptions())
	if res.PerTenant != nil {
		t.Fatalf("single-tenant mix reported PerTenant %+v", res.PerTenant)
	}
}

// TestDCMixPooledMatchesFresh extends the pooled-reuse golden property to
// multi-tenant mixes: a pooled, Reset simulator must reproduce the fresh
// run byte-for-byte, per-tenant attribution included.
func TestDCMixPooledMatchesFresh(t *testing.T) {
	for _, name := range []string{"KV4", "DC4"} {
		name := name
		t.Run(name, func(t *testing.T) {
			mix := workloads.MustByName(name)
			factory := SchemeBiModal.Factory()
			o1 := dcOptions()
			o2 := o1
			o2.Seed = 11

			fresh1 := encodeResult(t, runSim(t, NewSim(mix, factory, o1)))
			fresh2 := encodeResult(t, runSim(t, NewSim(mix, factory, o2)))
			if bytes.Equal(fresh1, fresh2) {
				t.Fatal("seed change not observable")
			}

			pool := NewRunPool(1)
			s := pool.Get("bimodal", mix, factory, o1)
			if got := encodeResult(t, runSim(t, s)); !bytes.Equal(got, fresh1) {
				t.Errorf("first pooled run diverges from fresh run")
			}
			pool.Put(s)
			s2 := pool.Get("bimodal", mix, factory, o2)
			if hits, _ := pool.Stats(); hits != 1 {
				t.Fatalf("second Get was not served by reuse (hits=%d)", hits)
			}
			if got := encodeResult(t, runSim(t, s2)); !bytes.Equal(got, fresh2) {
				t.Errorf("reused pooled run diverges from fresh run")
			}
		})
	}
}

// TestDCMixRestoreMatchesStraight extends the warm-restore golden
// property to multi-tenant mixes: snapshot at the warmup boundary,
// restore into a fresh Sim, measure — byte-identical to straight-through,
// per-tenant baseline subtraction included.
func TestDCMixRestoreMatchesStraight(t *testing.T) {
	mix := workloads.MustByName("DC4")
	checkRestoreGolden(t, mix, SchemeBiModal.Factory(), dcOptions(), "sha256:dc4-test-prefix")
}

// TestDCMixParallelMatchesSerial runs the multi-tenant standalone fan-out
// (engine.Map) serially and at several worker counts: the interleaved
// per-tenant streams must make worker scheduling unobservable.
func TestDCMixParallelMatchesSerial(t *testing.T) {
	mix := workloads.MustByName("DC4")
	factory := SchemeBiModal.Factory()
	base := dcOptions()
	base.Workers = 1
	serialStandalone, err := RunStandaloneContext(context.Background(), mix, factory, base)
	if err != nil {
		t.Fatal(err)
	}
	serialANTT, serialMulti, err := ANTTContext(context.Background(), mix, factory, base)
	if err != nil {
		t.Fatal(err)
	}
	serialBytes := encodeResult(t, serialMulti)
	for _, workers := range []int{2, engine.Workers(0)} {
		o := base
		o.Workers = workers
		par, err := RunStandaloneContext(context.Background(), mix, factory, o)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serialStandalone {
			if par[i] != serialStandalone[i] {
				t.Fatalf("workers=%d: standalone core %d = %+v, want %+v", workers, i, par[i], serialStandalone[i])
			}
		}
		antt, multi, err := ANTTContext(context.Background(), mix, factory, o)
		if err != nil {
			t.Fatal(err)
		}
		if antt != serialANTT {
			t.Errorf("workers=%d: ANTT %v, want %v", workers, antt, serialANTT)
		}
		if got := encodeResult(t, multi); !bytes.Equal(got, serialBytes) {
			t.Errorf("workers=%d: multiprogrammed result diverges from serial", workers)
		}
	}
}
