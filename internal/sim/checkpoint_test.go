package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"bimodal/internal/cpu"
	"bimodal/internal/dramcache"
	"bimodal/internal/energy"
	"bimodal/internal/spec"
	"bimodal/internal/workloads"
)

// resultView is RunResult minus the live Scheme handle: the comparable,
// marshalable projection the golden tests compare byte-for-byte.
type resultView struct {
	Mix       string
	PerCore   []cpu.CoreResult
	PerTenant []cpu.TenantResult
	Report    dramcache.Report
	Energy    energy.Breakdown
}

func viewJSON(t *testing.T, r RunResult) []byte {
	t.Helper()
	b, err := json.Marshal(resultView{Mix: r.Mix, PerCore: r.PerCore, PerTenant: r.PerTenant, Report: r.Report, Energy: r.Energy})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func goldenSpec(t *testing.T, scheme string, params spec.Params, prefetch int) spec.RunSpec {
	t.Helper()
	rs := spec.RunSpec{
		Scheme: scheme,
		Params: params,
		Mix:    "Q1",
		Options: spec.Options{
			AccessesPerCore: 1000,
			CacheDivisor:    64,
			Prefetch:        prefetch,
		},
		Seed: 3,
	}
	c, err := rs.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// checkRestoreGolden proves the tentpole property for one configuration:
// warmup → snapshot → restore into a freshly built simulation → measure
// produces results byte-identical to a straight-through run.
func checkRestoreGolden(t *testing.T, mix workloads.Mix, factory Factory, o Options, prefix string) {
	t.Helper()
	ctx := context.Background()

	straight, err := RunContext(ctx, mix, factory, o)
	if err != nil {
		t.Fatal(err)
	}
	golden := viewJSON(t, straight)

	producer := NewSim(mix, factory, o)
	if err := producer.Warmup(ctx); err != nil {
		t.Fatal(err)
	}
	blob := producer.Snapshot(prefix)

	restored := NewSim(mix, factory, o)
	if err := restored.Restore(blob, prefix); err != nil {
		t.Fatalf("restore: %v", err)
	}
	warmRes, err := restored.Measure(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := viewJSON(t, warmRes); !bytes.Equal(got, golden) {
		t.Errorf("restore-then-run diverged from straight-through:\n got: %s\nwant: %s", got, golden)
	}

	// The producer's own measured window must also match: it warmed up
	// in-process and measures without restoring.
	prodRes, err := producer.Measure(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := viewJSON(t, prodRes); !bytes.Equal(got, golden) {
		t.Errorf("producer measure diverged from straight-through:\n got: %s\nwant: %s", got, golden)
	}
}

// TestRestoreThenRunGolden covers every registered scheme, plus variants
// exercising the optional structures (miss predictor, victim buffer,
// prefetcher) the plain registry entries leave disabled.
func TestRestoreThenRunGolden(t *testing.T) {
	type case_ struct {
		name     string
		scheme   string
		params   spec.Params
		prefetch int
	}
	cases := []case_{}
	for _, name := range spec.Names() {
		cases = append(cases, case_{name: name, scheme: name})
	}
	cases = append(cases,
		case_{name: "bimodal+misspred+victims", scheme: "bimodal",
			params: spec.Params{"miss_predictor": 1, "victim_entries": 8}},
		case_{name: "bimodal+prefetch", scheme: "bimodal", prefetch: 2},
	)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs := goldenSpec(t, tc.scheme, tc.params, tc.prefetch)
			prefix, ok, err := rs.PrefixHash()
			if err != nil || !ok {
				t.Fatalf("PrefixHash: ok=%v err=%v", ok, err)
			}
			mix := workloads.MustByName(rs.Mix)
			factory, err := FactoryForSpec(rs, mix.Cores())
			if err != nil {
				t.Fatal(err)
			}
			o := OptionsForSpec(rs)
			o.Workers = 1
			checkRestoreGolden(t, mix, factory, o, prefix)
		})
	}
}

// TestRestoreGoldenLohHillMissMap covers the MissMap (a Go map serialized
// in sorted-key order), which no registry entry enables.
func TestRestoreGoldenLohHillMissMap(t *testing.T) {
	mix := workloads.MustByName("Q1")
	factory := func(cfg dramcache.Config) dramcache.Scheme {
		return dramcache.NewLohHill(cfg, dramcache.WithMissMap())
	}
	o := Options{AccessesPerCore: 1000, CacheDivisor: 64, Seed: 3, Workers: 1}
	checkRestoreGolden(t, mix, factory, o, "sha256:"+string(bytes.Repeat([]byte{'a'}, 64)))
}

// TestRestorePrefixMismatch proves a blob cannot restore under a
// different prefix hash: the envelope binding, not caller discipline,
// enforces congruence.
func TestRestorePrefixMismatch(t *testing.T) {
	rs := goldenSpec(t, "alloy", nil, 0)
	prefix, _, err := rs.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}
	mix := workloads.MustByName(rs.Mix)
	factory, err := FactoryForSpec(rs, mix.Cores())
	if err != nil {
		t.Fatal(err)
	}
	o := OptionsForSpec(rs)
	s := NewSim(mix, factory, o)
	if err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	blob := s.Snapshot(prefix)
	other := NewSim(mix, factory, o)
	if err := other.Restore(blob, "sha256:"+string(bytes.Repeat([]byte{'0'}, 64))); err == nil {
		t.Fatal("restore under a mismatched prefix hash succeeded")
	}
}

// TestRestoreIncongruentGeometry proves structural validation: a blob
// restored (with the binding check bypassed) into a simulation built from
// a different configuration must fail loudly, not misread state.
func TestRestoreIncongruentGeometry(t *testing.T) {
	rs := goldenSpec(t, "bimodal", nil, 0)
	prefix, _, err := rs.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}
	mix := workloads.MustByName(rs.Mix)
	factory, err := FactoryForSpec(rs, mix.Cores())
	if err != nil {
		t.Fatal(err)
	}
	o := OptionsForSpec(rs)
	s := NewSim(mix, factory, o)
	if err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	blob := s.Snapshot(prefix)

	smaller := o
	smaller.CacheDivisor = o.CacheDivisor * 2
	other := NewSim(mix, factory, smaller)
	if err := other.Restore(blob, ""); err == nil {
		t.Fatal("restore into a differently-sized cache succeeded")
	}
}

// TestRestoreRejectsCorruptBlob proves the sealed envelope catches bit
// rot before any state is overwritten.
func TestRestoreRejectsCorruptBlob(t *testing.T) {
	rs := goldenSpec(t, "footprint", nil, 0)
	prefix, _, err := rs.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}
	mix := workloads.MustByName(rs.Mix)
	factory, err := FactoryForSpec(rs, mix.Cores())
	if err != nil {
		t.Fatal(err)
	}
	o := OptionsForSpec(rs)
	s := NewSim(mix, factory, o)
	if err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	blob := s.Snapshot(prefix)
	blob[len(blob)/2] ^= 0x10
	if err := NewSim(mix, factory, o).Restore(blob, prefix); err == nil {
		t.Fatal("corrupt blob restored")
	}
}

// TestPrefixHashGrouping pins the prefix-hash semantics the warm runner
// relies on: cells differing only in measured length share a prefix
// (except the run-length-coupled plain bimodal scheme), cells differing
// in seed or warmup do not, and ANTT or warmup-disabled cells have none.
func TestPrefixHashGrouping(t *testing.T) {
	base := spec.RunSpec{Scheme: "alloy", Mix: "Q1",
		Options: spec.Options{AccessesPerCore: 1000, WarmupPerCore: 500, CacheDivisor: 64}, Seed: 3}
	h1, ok, err := base.PrefixHash()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}

	longer := base
	longer.Options.AccessesPerCore = 5000
	if h2, _, _ := longer.PrefixHash(); h2 != h1 {
		t.Error("measured length changed an alloy prefix hash")
	}

	coupled := base
	coupled.Scheme = "bimodal"
	ch1, _, _ := coupled.PrefixHash()
	coupledLonger := coupled
	coupledLonger.Options.AccessesPerCore = 5000
	if ch2, _, _ := coupledLonger.PrefixHash(); ch2 == ch1 {
		t.Error("bimodal scales core params from run length; prefix must differ")
	}

	seeded := base
	seeded.Seed = 4
	if h3, _, _ := seeded.PrefixHash(); h3 == h1 {
		t.Error("seed change kept the prefix hash")
	}

	noWarm := base
	noWarm.Options.WarmupPerCore = -1
	if _, ok, _ := noWarm.PrefixHash(); ok {
		t.Error("warmup-disabled spec reported a prefix")
	}

	antt := base
	antt.Options.ANTT = true
	if _, ok, _ := antt.PrefixHash(); ok {
		t.Error("ANTT spec reported a prefix")
	}

	if h, err := base.Hash(); err != nil || h == h1 {
		t.Errorf("prefix hash must be domain-separated from the result hash (%v)", err)
	}
}
