package sim

import (
	"context"
	"fmt"

	"bimodal/internal/cpu"
	"bimodal/internal/dramcache"
	"bimodal/internal/energy"
	"bimodal/internal/snapshot"
	"bimodal/internal/workloads"
)

// Sim is a simulation split at the warmup/measure phase boundary, the
// seam the warm-state checkpointing subsystem operates on: warm up once,
// snapshot, and fork restored engines into many measured runs. RunContext
// is expressed through it, so the straight-through and checkpointed paths
// execute the exact same engine call sequence and produce byte-identical
// results (DESIGN.md section 14).
type Sim struct {
	mix workloads.Mix
	o   Options
	eng *cpu.Engine
	pre []cpu.CoreResult
	// preT is the per-tenant warmup baseline (nil for single-tenant mixes),
	// captured alongside pre and subtracted the same way.
	preT   []cpu.TenantResult
	warmed bool

	// seeds is a reusable per-core seed buffer for Reset.
	seeds []uint64
	// key/pooled track RunPool membership; RunPool.Get manages them, and
	// Reset deliberately leaves them so a pooled Sim stays pooled.
	key    poolKey //bmlint:resetconst
	pooled bool    //bmlint:resetconst
}

// NewSim assembles a simulation without running it. The construction path
// is identical to RunContext's: normalized options, derived config, a
// fresh scheme from factory, generators seeded from o.Seed.
func NewSim(mix workloads.Mix, factory Factory, o Options) *Sim {
	o = o.normalize()
	cfg := ConfigFor(mix, o)
	scheme := factory(cfg)
	var pf *cpu.Prefetcher
	if o.PrefetchN > 0 {
		pf = cpu.NewPrefetcher(o.PrefetchN, mix.Cores())
	}
	return &Sim{
		mix: mix,
		o:   o,
		eng: cpu.NewEngine(scheme, mix.Generators(o.Seed), o.CoreCfg, pf),
	}
}

// sameRunShape reports whether two normalized option sets describe the
// same simulator structure. Seed is excluded (Reset re-seeds everything in
// place) and so is Workers (it only fans out independent runs and never
// shapes a Sim).
func sameRunShape(a, b Options) bool {
	a.Seed, b.Seed = 0, 0
	a.Workers, b.Workers = 0, 0
	return a == b
}

// Reset re-initializes the fully-constructed simulator in place for a new
// run — scheme, cores, generators and statistics — reusing every backing
// array, and reports whether it could. Reuse requires the same mix and the
// same run shape (options modulo Seed and Workers), and a scheme that
// implements dramcache.Resetter and accepts the derived config; otherwise
// Reset declines, leaving the Sim unusable (possibly half-reset), and the
// caller must build fresh with NewSim(mix, factory, o). After a successful
// Reset the Sim behaves byte-identically to NewSim(mix, factory, o): the
// scheme is back to its constructed state with the new seed, and each
// core's generator is re-seeded with workloads.CoreSeed(o.Seed, i) —
// exactly the seeds mix.Generators(o.Seed) would use.
//
// The factory parameter mirrors NewSim for call-site symmetry; Reset never
// invokes it (a declined reuse is signalled, not repaired).
//
//bmlint:hotpath
func (s *Sim) Reset(mix workloads.Mix, factory Factory, o Options) bool {
	o = o.normalize()
	if mix.Name != s.mix.Name || mix.Cores() != s.mix.Cores() || !sameRunShape(o, s.o) {
		return false
	}
	rs, ok := s.eng.Scheme().(dramcache.Resetter)
	if !ok || !rs.Reset(ConfigFor(mix, o)) {
		return false
	}
	s.seeds = s.seeds[:0]
	for i := 0; i < mix.Cores(); i++ {
		s.seeds = append(s.seeds, workloads.CoreSeed(o.Seed, i))
	}
	if !s.eng.Reset(s.seeds) {
		return false
	}
	s.mix = mix
	s.o = o
	s.pre = nil
	s.preT = nil
	s.warmed = false
	return true
}

// Warmup runs the warmup window. A no-op when warmup is disabled. Calling
// it twice (or after Restore) is a misuse.
func (s *Sim) Warmup(ctx context.Context) error {
	if s.warmed {
		return fmt.Errorf("sim: Warmup called on an already-warm simulation")
	}
	if s.o.WarmupPerCore <= 0 {
		return nil
	}
	pre, err := s.eng.WarmupContext(ctx, s.o.WarmupPerCore)
	if err != nil {
		return err
	}
	s.pre = pre
	s.preT = s.eng.TenantTotals()
	s.warmed = true
	return nil
}

// Snapshot seals the complete simulator state into a blob bound to
// prefixHash (see spec.PrefixHash). Valid at the warmup/measure boundary:
// after Warmup, before Measure.
func (s *Sim) Snapshot(prefixHash string) []byte {
	w := snapshot.NewWriter()
	s.eng.SnapshotState(w)
	return snapshot.Seal(prefixHash, w.Bytes())
}

// Restore overwrites the simulator state from a blob produced by Snapshot
// on a congruent Sim (same mix, factory and warmup-prefix options — the
// prefix hash encodes exactly that congruence). A non-empty wantPrefix is
// checked against the hash sealed into the blob. On error the Sim must be
// discarded: state may be partially overwritten.
func (s *Sim) Restore(blob []byte, wantPrefix string) error {
	prefixHash, payload, err := snapshot.Open(blob)
	if err != nil {
		return err
	}
	if wantPrefix != "" && prefixHash != wantPrefix {
		return fmt.Errorf("sim: snapshot prefix %s does not match expected %s", prefixHash, wantPrefix)
	}
	r := snapshot.NewReader(payload)
	s.eng.RestoreState(r)
	if err := r.Err(); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("sim: restore: %d trailing payload bytes", n)
	}
	s.pre = s.eng.CumulativeResults()
	s.preT = s.eng.TenantTotals()
	s.warmed = true
	return nil
}

// Measure runs the measured window and assembles the run result. With no
// prior warmup it replays the plain single-phase path; after Warmup or
// Restore it reports the measured window relative to the warmup baseline,
// exactly as Engine.RunMeasuredContext does.
func (s *Sim) Measure(ctx context.Context) (RunResult, error) {
	var per []cpu.CoreResult
	var err error
	if s.warmed {
		per, err = s.eng.MeasureAfterWarmupContext(ctx, s.o.AccessesPerCore, s.pre)
	} else {
		per, err = s.eng.RunContext(ctx, s.o.AccessesPerCore)
	}
	if err != nil {
		return RunResult{}, err
	}
	scheme := s.eng.Scheme()
	rep := scheme.Report()
	return RunResult{
		Mix:       s.mix.Name,
		PerCore:   per,
		PerTenant: cpu.DeltaTenants(s.eng.TenantTotals(), s.preT),
		Report:    rep,
		Energy:    energy.Compute(rep, energy.Default()),
		Scheme:    scheme,
	}, nil
}
