package sim

import (
	"context"
	"fmt"

	"bimodal/internal/cpu"
	"bimodal/internal/energy"
	"bimodal/internal/snapshot"
	"bimodal/internal/workloads"
)

// Sim is a simulation split at the warmup/measure phase boundary, the
// seam the warm-state checkpointing subsystem operates on: warm up once,
// snapshot, and fork restored engines into many measured runs. RunContext
// is expressed through it, so the straight-through and checkpointed paths
// execute the exact same engine call sequence and produce byte-identical
// results (DESIGN.md section 14).
type Sim struct {
	mix    workloads.Mix
	o      Options
	eng    *cpu.Engine
	pre    []cpu.CoreResult
	warmed bool
}

// NewSim assembles a simulation without running it. The construction path
// is identical to RunContext's: normalized options, derived config, a
// fresh scheme from factory, generators seeded from o.Seed.
func NewSim(mix workloads.Mix, factory Factory, o Options) *Sim {
	o = o.normalize()
	cfg := ConfigFor(mix, o)
	scheme := factory(cfg)
	var pf *cpu.Prefetcher
	if o.PrefetchN > 0 {
		pf = cpu.NewPrefetcher(o.PrefetchN, mix.Cores())
	}
	return &Sim{
		mix: mix,
		o:   o,
		eng: cpu.NewEngine(scheme, mix.Generators(o.Seed), o.CoreCfg, pf),
	}
}

// Warmup runs the warmup window. A no-op when warmup is disabled. Calling
// it twice (or after Restore) is a misuse.
func (s *Sim) Warmup(ctx context.Context) error {
	if s.warmed {
		return fmt.Errorf("sim: Warmup called on an already-warm simulation")
	}
	if s.o.WarmupPerCore <= 0 {
		return nil
	}
	pre, err := s.eng.WarmupContext(ctx, s.o.WarmupPerCore)
	if err != nil {
		return err
	}
	s.pre = pre
	s.warmed = true
	return nil
}

// Snapshot seals the complete simulator state into a blob bound to
// prefixHash (see spec.PrefixHash). Valid at the warmup/measure boundary:
// after Warmup, before Measure.
func (s *Sim) Snapshot(prefixHash string) []byte {
	w := snapshot.NewWriter()
	s.eng.SnapshotState(w)
	return snapshot.Seal(prefixHash, w.Bytes())
}

// Restore overwrites the simulator state from a blob produced by Snapshot
// on a congruent Sim (same mix, factory and warmup-prefix options — the
// prefix hash encodes exactly that congruence). A non-empty wantPrefix is
// checked against the hash sealed into the blob. On error the Sim must be
// discarded: state may be partially overwritten.
func (s *Sim) Restore(blob []byte, wantPrefix string) error {
	prefixHash, payload, err := snapshot.Open(blob)
	if err != nil {
		return err
	}
	if wantPrefix != "" && prefixHash != wantPrefix {
		return fmt.Errorf("sim: snapshot prefix %s does not match expected %s", prefixHash, wantPrefix)
	}
	r := snapshot.NewReader(payload)
	s.eng.RestoreState(r)
	if err := r.Err(); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("sim: restore: %d trailing payload bytes", n)
	}
	s.pre = s.eng.CumulativeResults()
	s.warmed = true
	return nil
}

// Measure runs the measured window and assembles the run result. With no
// prior warmup it replays the plain single-phase path; after Warmup or
// Restore it reports the measured window relative to the warmup baseline,
// exactly as Engine.RunMeasuredContext does.
func (s *Sim) Measure(ctx context.Context) (RunResult, error) {
	var per []cpu.CoreResult
	var err error
	if s.warmed {
		per, err = s.eng.MeasureAfterWarmupContext(ctx, s.o.AccessesPerCore, s.pre)
	} else {
		per, err = s.eng.RunContext(ctx, s.o.AccessesPerCore)
	}
	if err != nil {
		return RunResult{}, err
	}
	scheme := s.eng.Scheme()
	rep := scheme.Report()
	return RunResult{
		Mix:     s.mix.Name,
		PerCore: per,
		Report:  rep,
		Energy:  energy.Compute(rep, energy.Default()),
		Scheme:  scheme,
	}, nil
}
