package sim

import (
	"reflect"
	"strings"
	"testing"

	"bimodal/internal/spec"
	"bimodal/internal/workloads"
)

// TestFactoryForSpecMatchesLegacy checks the spec path is a pure
// refactoring: for every scheme, running via FactoryForSpec produces the
// exact result the legacy wiring (BiModalFactory for plain bimodal,
// SchemeID.Factory() for everything else — what cmd/bmsim and the service
// did before specs) produces. This is the parity guarantee behind the
// golden result files staying byte-identical.
func TestFactoryForSpecMatchesLegacy(t *testing.T) {
	mix := workloads.MustByName("Q1")
	for _, id := range SchemeIDs() {
		rs := spec.RunSpec{
			Scheme: id.String(),
			Mix:    "Q1",
			Seed:   7,
			Options: spec.Options{
				AccessesPerCore: 2000,
				CacheDivisor:    64,
			},
		}
		specFactory, err := FactoryForSpec(rs, mix.Cores())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		c, err := rs.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		opts := OptionsForSpec(c)

		var legacy Factory
		if id == SchemeBiModal {
			legacy = BiModalFactory(mix.Cores(), opts)
		} else {
			legacy = id.Factory()
		}
		want := Run(mix, legacy, opts)
		got := Run(mix, specFactory, opts)
		if !reflect.DeepEqual(want.Report, got.Report) {
			t.Errorf("%s: report diverged\nlegacy %+v\nspec   %+v", id, want.Report, got.Report)
		}
		if !reflect.DeepEqual(want.PerCore, got.PerCore) {
			t.Errorf("%s: per-core results diverged", id)
		}
		if want.Energy != got.Energy {
			t.Errorf("%s: energy diverged", id)
		}
	}
}

// TestFactoryForSpecParamsChangeResult checks spec params actually reach
// the builder: a geometry override must produce a different simulation
// than the defaults.
func TestFactoryForSpecParamsChangeResult(t *testing.T) {
	mix := workloads.MustByName("Q1")
	base := spec.RunSpec{
		Scheme:  "bimodal",
		Mix:     "Q1",
		Seed:    7,
		Options: spec.Options{AccessesPerCore: 2000, CacheDivisor: 64},
	}
	tweaked := base
	tweaked.Params = spec.Params{"fixed_big": 1}

	fa, err := FactoryForSpec(base, mix.Cores())
	if err != nil {
		t.Fatal(err)
	}
	fb, err := FactoryForSpec(tweaked, mix.Cores())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := base.Canonical()
	opts := OptionsForSpec(c)
	a := Run(mix, fa, opts)
	b := Run(mix, fb, opts)
	if reflect.DeepEqual(a.Report, b.Report) {
		t.Error("fixed_big param had no effect on the simulation")
	}
}

func TestFactoryForSpecRejectsBadSpecs(t *testing.T) {
	if _, err := FactoryForSpec(spec.RunSpec{Scheme: "bogus", Mix: "Q1"}, 4); err == nil ||
		!strings.Contains(err.Error(), "unknown scheme") {
		t.Errorf("unknown scheme: %v", err)
	}
	bad := spec.RunSpec{Scheme: "alloy", Mix: "Q1", Params: spec.Params{"way_locator_k": 12}}
	if _, err := FactoryForSpec(bad, 4); err == nil ||
		!strings.Contains(err.Error(), "takes no parameters") {
		t.Errorf("baseline params: %v", err)
	}
}
