package sim

import (
	"fmt"

	"bimodal/internal/dramcache"
	"bimodal/internal/spec"
)

// OptionsForSpec translates a run spec into sim.Options. Workers is left
// zero (serial): parallelism is an execution concern the spec — and
// therefore the result hash — deliberately cannot express; callers set it
// separately.
func OptionsForSpec(rs spec.RunSpec) Options {
	return Options{
		AccessesPerCore: rs.Options.AccessesPerCore,
		WarmupPerCore:   rs.Options.WarmupPerCore,
		Seed:            rs.Seed,
		CacheBytes:      rs.Options.CacheBytes,
		CacheDivisor:    rs.Options.CacheDivisor,
		PrefetchN:       rs.Options.Prefetch,
	}
}

// FactoryForSpec returns the factory a CLI or service run uses for the
// spec. The plain "bimodal" scheme gets the run-length-scaled core
// parameters (ScaledCoreParams), exactly as cmd/bmsim and the service
// have always configured it; variants and baselines build with their
// paper defaults. Spec params overlay either way, so geometry overrides
// compose with the scaling.
func FactoryForSpec(rs spec.RunSpec, cores int) (Factory, error) {
	c, err := rs.Canonical()
	if err != nil {
		return nil, err
	}
	d, err := spec.Lookup(c.Scheme)
	if err != nil {
		return nil, err
	}
	o := OptionsForSpec(c).normalize()
	scaled := c.Scheme == SchemeBiModal.String()
	return func(cfg dramcache.Config) dramcache.Scheme {
		bc := spec.BuildConfig{Cache: cfg}
		if scaled {
			p := ScaledCoreParams(cfg.CacheBytes, cores, o.AccessesPerCore)
			bc.CoreParams = &p
		}
		s, err := d.New(bc, c.Params)
		if err != nil {
			// The spec canonicalized above, so every parameter passed its
			// schema and cross checks; a build failure here is a bug.
			panic(fmt.Sprintf("sim: building %s from validated spec: %v", c.Scheme, err))
		}
		return s
	}, nil
}
