package sim

import (
	"sync"

	"bimodal/internal/workloads"
)

// poolKey identifies one reusable simulator geometry: the scheme, the mix
// and the run shape. Seed and Workers are deliberately excluded — Reset
// re-seeds everything in place and Workers never shapes a Sim — so a seed
// sweep over one cell recycles a single simulator instead of building one
// per seed. A key mismatch only costs a fresh construction, never
// correctness.
type poolKey struct {
	scheme string
	mix    string
	opts   Options
}

// newPoolKey derives the free-list key for a run.
func newPoolKey(scheme string, mix workloads.Mix, o Options) poolKey {
	o = o.normalize()
	o.Seed = 0
	o.Workers = 0
	return poolKey{scheme: scheme, mix: mix.Name, opts: o}
}

// RunPool recycles fully-constructed simulators — schemes, cores,
// generators and statistics — across runs. Construction dominates short
// runs (metadata arrays for multi-megabyte caches, per-core generators),
// so drawing a pooled Sim and re-initializing it in place with Reset turns
// the per-run cost into a handful of array clears. The pool is safe for
// concurrent use; retained simulators are bounded by max across all keys.
//
// Usage: Get a Sim keyed by a stable scheme identifier (the registry
// scheme name), run it, then Put it back. A Sim obtained from Get must not
// be used after Put returns it to the pool.
type RunPool struct {
	mu   sync.Mutex
	max  int
	size int
	free map[poolKey][]*Sim

	hits   int64
	misses int64
}

// DefaultPoolSize bounds retained simulators when NewRunPool is given a
// non-positive max.
const DefaultPoolSize = 8

// NewRunPool builds a pool retaining at most max idle simulators across
// all geometry keys (DefaultPoolSize when max <= 0).
func NewRunPool(max int) *RunPool {
	if max <= 0 {
		max = DefaultPoolSize
	}
	return &RunPool{max: max, free: make(map[poolKey][]*Sim)}
}

// Get returns a ready-to-run Sim for (mix, factory, o), reusing a pooled
// simulator with the same geometry when one is free and falling back to
// NewSim otherwise. scheme must be a stable identifier for what factory
// builds (the registry scheme name): it keys the free lists, so two
// different factories must never share a scheme string with equal mix and
// options. The returned Sim behaves byte-identically to NewSim(mix,
// factory, o).
func (p *RunPool) Get(scheme string, mix workloads.Mix, factory Factory, o Options) *Sim {
	k := newPoolKey(scheme, mix, o)
	p.mu.Lock()
	var s *Sim
	if list := p.free[k]; len(list) > 0 {
		s = list[len(list)-1]
		list[len(list)-1] = nil
		p.free[k] = list[:len(list)-1]
		p.size--
	}
	p.mu.Unlock()
	if s != nil && s.Reset(mix, factory, o) {
		p.mu.Lock()
		p.hits++
		p.mu.Unlock()
		return s
	}
	p.mu.Lock()
	p.misses++
	p.mu.Unlock()
	s = NewSim(mix, factory, o)
	s.key = k
	s.pooled = true
	return s
}

// Put returns a Sim obtained from Get to the pool for reuse. Simulators
// built directly with NewSim, and any Sim once the pool is full, are
// dropped for the garbage collector. Put is nil-safe.
func (p *RunPool) Put(s *Sim) {
	if s == nil || !s.pooled {
		return
	}
	p.mu.Lock()
	if p.size < p.max {
		p.free[s.key] = append(p.free[s.key], s)
		p.size++
	}
	p.mu.Unlock()
}

// Stats reports how many Gets were served by in-place reuse (hits) versus
// fresh construction (misses), for observability and tests.
func (p *RunPool) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}
