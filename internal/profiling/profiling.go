// Package profiling wires runtime/pprof into the CLI tools: a CPU profile
// spanning the run and a heap profile captured at exit. The server gets
// live profiles over HTTP (net/http/pprof) instead; this package is for
// the one-shot commands, where a file is the useful artifact:
//
//	paper -exp fig7 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into path. It returns a stop function that
// ends the profile and closes the file; when path is empty the stop
// function is a no-op, so callers can defer it unconditionally.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap captures an allocation profile into path (no-op when empty).
// A GC runs first so the profile reflects live objects, not garbage.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
