// Package sram provides a functional set-associative SRAM cache model.
//
// It is used for the last-level SRAM cache (LLSC) that filters traffic in
// the full-system example, for the ATCache tag cache and for the Footprint
// Cache tag array. Contents are tracked functionally (tags only); timing is
// a fixed hit latency configured by the owner.
package sram

import (
	"fmt"

	"bimodal/internal/addr"
	"bimodal/internal/xrand"
)

// Replacement selects the victim policy.
type Replacement int

// Replacement policies.
const (
	LRU Replacement = iota
	Random
)

// Config describes a cache.
type Config struct {
	SizeBytes uint64
	BlockSize uint64
	Assoc     int
	Policy    Replacement
	// HitLatency in CPU cycles (informational; callers add it themselves).
	HitLatency int64
	// Seed for the Random policy.
	Seed uint64
}

// Way is one cache way's state.
type Way struct {
	Valid bool
	Dirty bool
	Tag   uint64
	// Aux is caller-defined payload (e.g. footprint bits, way pointers).
	Aux uint64
	// lastUse orders recency for LRU.
	lastUse uint64
}

// Victim describes an evicted block.
type Victim struct {
	Valid bool
	Dirty bool
	Addr  addr.Phys
	Aux   uint64
}

// Cache is a set-associative cache over 64-bit tags.
type Cache struct {
	// cfg and the derived field extractor are construction-time geometry;
	// snapshots rebuild them from Config.
	cfg    Config      //bmlint:nosnapshot
	fields addr.Fields //bmlint:resetconst //bmlint:nosnapshot
	sets   [][]Way
	clock  uint64
	rng    *xrand.Rand

	// Statistics.
	Hits   int64
	Misses int64
}

// New builds a cache. SizeBytes / BlockSize / Assoc must describe a
// power-of-two number of sets.
func New(cfg Config) *Cache {
	if cfg.Assoc <= 0 || cfg.BlockSize == 0 || cfg.SizeBytes == 0 {
		panic(fmt.Sprintf("sram: invalid config %+v", cfg))
	}
	blocks := cfg.SizeBytes / cfg.BlockSize
	sets := blocks / uint64(cfg.Assoc)
	if sets == 0 || !addr.IsPow2(sets) {
		panic(fmt.Sprintf("sram: set count %d must be a positive power of two (size=%d block=%d assoc=%d)",
			sets, cfg.SizeBytes, cfg.BlockSize, cfg.Assoc))
	}
	c := &Cache{
		cfg:    cfg,
		fields: addr.NewFields(cfg.BlockSize, sets),
		sets:   make([][]Way, sets),
		rng:    xrand.New(cfg.Seed + 0x5ea5),
	}
	backing := make([]Way, int(sets)*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c
}

// Reset returns the cache to its just-constructed state in place, reusing
// the set backing array: all ways invalidated, recency clock zeroed, the
// victim rng re-seeded and statistics cleared. cfg.Seed may differ from the
// construction seed; the remaining geometry fields must match (callers key
// pooled reuse on geometry, so this is not re-checked here).
//
//bmlint:hotpath
func (c *Cache) Reset(cfg Config) {
	c.cfg = cfg
	for _, set := range c.sets {
		for i := range set {
			set[i] = Way{}
		}
	}
	c.clock = 0
	c.rng.Seed(cfg.Seed + 0x5ea5)
	c.Hits, c.Misses = 0, 0
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Fields returns the address splitter used by this cache.
func (c *Cache) Fields() addr.Fields { return c.fields }

// NumSets returns the set count.
func (c *Cache) NumSets() uint64 { return c.fields.NumSets() }

// Lookup probes for p without modifying recency. It returns the way index
// or -1.
//
//bmlint:hotpath
func (c *Cache) Lookup(p addr.Phys) int {
	set := c.sets[c.fields.Set(p)]
	tag := c.fields.Tag(p)
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			return i
		}
	}
	return -1
}

// Access probes for p, updating recency and hit/miss statistics. It returns
// (hit, way index). On a miss the way index is -1 and nothing is inserted.
//
//bmlint:hotpath
func (c *Cache) Access(p addr.Phys, write bool) (bool, int) {
	si := c.fields.Set(p)
	set := c.sets[si]
	tag := c.fields.Tag(p)
	c.clock++
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			set[i].lastUse = c.clock
			if write {
				set[i].Dirty = true
			}
			c.Hits++
			return true, i
		}
	}
	c.Misses++
	return false, -1
}

// Insert fills p into its set, evicting a victim if needed. The dirty flag
// marks the incoming block; aux is caller payload. It returns the victim
// (Victim.Valid reports whether a live block was displaced).
func (c *Cache) Insert(p addr.Phys, dirty bool, aux uint64) Victim {
	si := c.fields.Set(p)
	set := c.sets[si]
	tag := c.fields.Tag(p)
	c.clock++
	// Reuse an invalid way if present.
	vi := -1
	for i := range set {
		if !set[i].Valid {
			vi = i
			break
		}
	}
	var victim Victim
	if vi == -1 {
		vi = c.victimIndex(set)
		w := set[vi]
		victim = Victim{
			Valid: true,
			Dirty: w.Dirty,
			Addr:  c.fields.Rebuild(w.Tag, si),
			Aux:   w.Aux,
		}
	}
	set[vi] = Way{Valid: true, Dirty: dirty, Tag: tag, Aux: aux, lastUse: c.clock}
	return victim
}

// victimIndex picks a victim way per the policy.
func (c *Cache) victimIndex(set []Way) int {
	if c.cfg.Policy == Random {
		return c.rng.Intn(len(set))
	}
	vi, oldest := 0, set[0].lastUse
	for i := 1; i < len(set); i++ {
		if set[i].lastUse < oldest {
			vi, oldest = i, set[i].lastUse
		}
	}
	return vi
}

// Invalidate removes p if present, returning whether it was present and
// whether it was dirty.
func (c *Cache) Invalidate(p addr.Phys) (present, dirty bool) {
	si := c.fields.Set(p)
	set := c.sets[si]
	tag := c.fields.Tag(p)
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			d := set[i].Dirty
			set[i] = Way{}
			return true, d
		}
	}
	return false, false
}

// Aux returns the aux payload of a resident block (ok=false if absent).
func (c *Cache) Aux(p addr.Phys) (aux uint64, ok bool) {
	if i := c.Lookup(p); i >= 0 {
		return c.sets[c.fields.Set(p)][i].Aux, true
	}
	return 0, false
}

// SetAux updates the aux payload of a resident block.
func (c *Cache) SetAux(p addr.Phys, aux uint64) bool {
	if i := c.Lookup(p); i >= 0 {
		c.sets[c.fields.Set(p)][i].Aux = aux
		return true
	}
	return false
}

// WaysOf returns a copy of the set containing p, MRU-first, for
// instrumentation (e.g. the Figure 5 MRU-position study).
func (c *Cache) WaysOf(p addr.Phys) []Way {
	set := c.sets[c.fields.Set(p)]
	out := make([]Way, len(set))
	copy(out, set)
	// Selection-sort by recency, newest first (assoc is small).
	for i := 0; i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].lastUse > out[best].lastUse {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out
}

// MRUIndex returns the recency position (0 = MRU) of p within its set, or
// -1 if absent. Recency positions count valid ways only.
func (c *Cache) MRUIndex(p addr.Phys) int {
	set := c.sets[c.fields.Set(p)]
	tag := c.fields.Tag(p)
	ti := -1
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			ti = i
			break
		}
	}
	if ti == -1 {
		return -1
	}
	pos := 0
	for i := range set {
		if i != ti && set[i].Valid && set[i].lastUse > set[ti].lastUse {
			pos++
		}
	}
	return pos
}

// HitRate returns hits / (hits+misses).
func (c *Cache) HitRate() float64 {
	tot := c.Hits + c.Misses
	if tot == 0 {
		return 0
	}
	return float64(c.Hits) / float64(tot)
}

// ResetStats clears hit/miss counters.
func (c *Cache) ResetStats() { c.Hits, c.Misses = 0, 0 }
