package sram

import "bimodal/internal/snapshot"

// SnapshotState implements snapshot.Snapshotter: every way (the backing
// array is walked set-major, way-minor), the recency clock, the
// replacement rng and the hit/miss counters. Geometry is configuration.
func (c *Cache) SnapshotState(w *snapshot.Writer) {
	w.Tag("sram")
	for _, set := range c.sets {
		for _, way := range set {
			w.Bool(way.Valid)
			w.Bool(way.Dirty)
			w.U64(way.Tag)
			w.U64(way.Aux)
			w.U64(way.lastUse)
		}
	}
	w.U64(c.clock)
	c.rng.SnapshotState(w)
	w.I64(c.Hits)
	w.I64(c.Misses)
}

// RestoreState implements snapshot.Snapshotter. c must have been built
// with the same Config as the producer.
func (c *Cache) RestoreState(r *snapshot.Reader) {
	r.Tag("sram")
	for _, set := range c.sets {
		for i := range set {
			set[i].Valid = r.Bool()
			set[i].Dirty = r.Bool()
			set[i].Tag = r.U64()
			set[i].Aux = r.U64()
			set[i].lastUse = r.U64()
		}
	}
	c.clock = r.U64()
	c.rng.RestoreState(r)
	c.Hits = r.I64()
	c.Misses = r.I64()
}
