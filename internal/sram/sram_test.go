package sram

import (
	"testing"
	"testing/quick"

	"bimodal/internal/addr"
)

func small() *Cache {
	return New(Config{SizeBytes: 4096, BlockSize: 64, Assoc: 4}) // 16 sets
}

func TestMissThenHit(t *testing.T) {
	c := small()
	hit, _ := c.Access(0x1000, false)
	if hit {
		t.Fatal("cold access should miss")
	}
	c.Insert(0x1000, false, 0)
	hit, wi := c.Access(0x1000, false)
	if !hit || wi < 0 {
		t.Fatal("access after insert should hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestWriteSetsDirty(t *testing.T) {
	c := small()
	c.Insert(0x1000, false, 0)
	c.Access(0x1000, true)
	_, dirty := c.Invalidate(0x1000)
	if !dirty {
		t.Error("write should have set dirty bit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	setStride := addr.Phys(64 * 16) // same set every stride
	// Fill 4 ways of set 0.
	for i := 0; i < 4; i++ {
		p := addr.Phys(i) * setStride
		c.Insert(p, false, 0)
		c.Access(p, false)
	}
	// Touch block 0 so block 1 is LRU.
	c.Access(0, false)
	v := c.Insert(4*setStride, false, 0)
	if !v.Valid {
		t.Fatal("expected an eviction")
	}
	if v.Addr != setStride {
		t.Errorf("victim = %x, want %x (LRU)", v.Addr, setStride)
	}
}

func TestVictimCarriesDirtyAndAux(t *testing.T) {
	c := New(Config{SizeBytes: 128, BlockSize: 64, Assoc: 1}) // 2 sets
	c.Insert(0, true, 0xabc)
	v := c.Insert(128, false, 0) // same set (stride 128 with 2 sets of 64B)
	if !v.Valid || !v.Dirty || v.Aux != 0xabc || v.Addr != 0 {
		t.Errorf("victim = %+v", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Insert(0x40, false, 0)
	present, dirty := c.Invalidate(0x40)
	if !present || dirty {
		t.Errorf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if hit, _ := c.Access(0x40, false); hit {
		t.Error("block still present after invalidate")
	}
	present, _ = c.Invalidate(0x9999000)
	if present {
		t.Error("invalidate of absent block reported present")
	}
}

func TestAuxRoundTrip(t *testing.T) {
	c := small()
	c.Insert(0x80, false, 7)
	if aux, ok := c.Aux(0x80); !ok || aux != 7 {
		t.Errorf("aux = %d ok=%v", aux, ok)
	}
	if !c.SetAux(0x80, 9) {
		t.Fatal("SetAux failed")
	}
	if aux, _ := c.Aux(0x80); aux != 9 {
		t.Errorf("aux after set = %d", aux)
	}
	if _, ok := c.Aux(0xdead000); ok {
		t.Error("aux of absent block reported ok")
	}
	if c.SetAux(0xdead000, 1) {
		t.Error("SetAux of absent block reported ok")
	}
}

func TestMRUIndex(t *testing.T) {
	c := small()
	stride := addr.Phys(64 * 16)
	for i := 0; i < 4; i++ {
		c.Insert(addr.Phys(i)*stride, false, 0)
		c.Access(addr.Phys(i)*stride, false)
	}
	// Most recently accessed is block 3.
	if got := c.MRUIndex(3 * stride); got != 0 {
		t.Errorf("MRUIndex(newest) = %d", got)
	}
	if got := c.MRUIndex(0); got != 3 {
		t.Errorf("MRUIndex(oldest) = %d", got)
	}
	if got := c.MRUIndex(99 * stride); got != -1 {
		t.Errorf("MRUIndex(absent) = %d", got)
	}
}

func TestWaysOfOrdering(t *testing.T) {
	c := small()
	stride := addr.Phys(64 * 16)
	for i := 0; i < 4; i++ {
		c.Insert(addr.Phys(i)*stride, false, uint64(i))
		c.Access(addr.Phys(i)*stride, false)
	}
	ways := c.WaysOf(0)
	if len(ways) != 4 {
		t.Fatalf("len = %d", len(ways))
	}
	if ways[0].Aux != 3 || ways[3].Aux != 0 {
		t.Errorf("MRU-first ordering wrong: %+v", ways)
	}
}

func TestRandomPolicyStillEvicts(t *testing.T) {
	c := New(Config{SizeBytes: 4096, BlockSize: 64, Assoc: 4, Policy: Random, Seed: 1})
	stride := addr.Phys(64 * 16)
	for i := 0; i < 5; i++ {
		c.Insert(addr.Phys(i)*stride, false, 0)
	}
	// Exactly 4 of the 5 remain.
	resident := 0
	for i := 0; i < 5; i++ {
		if c.Lookup(addr.Phys(i)*stride) >= 0 {
			resident++
		}
	}
	if resident != 4 {
		t.Errorf("resident = %d, want 4", resident)
	}
}

func TestInsertIsIdempotentOnLookup(t *testing.T) {
	// Property: after Insert(p), Lookup(p) always finds it.
	c := New(Config{SizeBytes: 1 << 16, BlockSize: 64, Assoc: 8})
	f := func(raw uint64) bool {
		p := addr.Phys(raw) & addr.Mask
		c.Insert(p, false, 0)
		return c.Lookup(p) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCapacityProperty(t *testing.T) {
	// Property: the number of resident distinct blocks never exceeds
	// capacity in blocks.
	c := New(Config{SizeBytes: 2048, BlockSize: 64, Assoc: 2}) // 32 blocks
	inserted := map[addr.Phys]bool{}
	for i := 0; i < 500; i++ {
		p := addr.Phys(i*64*7) & addr.Mask
		c.Insert(p, false, 0)
		inserted[p.Block(64)] = true
	}
	resident := 0
	for p := range inserted {
		if c.Lookup(p) >= 0 {
			resident++
		}
	}
	if resident > 32 {
		t.Errorf("resident %d exceeds capacity 32", resident)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid config")
		}
	}()
	New(Config{SizeBytes: 100, BlockSize: 64, Assoc: 3})
}

func TestResetStats(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.ResetStats()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("ResetStats failed")
	}
	if c.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

func TestAccessorMethods(t *testing.T) {
	c := small()
	if c.NumSets() != 16 {
		t.Errorf("NumSets = %d", c.NumSets())
	}
	if c.Config().Assoc != 4 {
		t.Error("Config accessor wrong")
	}
	if c.Fields().BlockSize() != 64 {
		t.Error("Fields accessor wrong")
	}
}
