package stats

import (
	"math"
	"strings"
	"testing"
)

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if Ratio(1, 2) != 0.5 {
		t.Error("Ratio(1,2) != 0.5")
	}
	if Pct(1, 4) != 25 {
		t.Error("Pct(1,4) != 25")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 80); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Improvement = %v", got)
	}
	if Improvement(0, 5) != 0 {
		t.Error("Improvement with zero before should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(9)
	for v := 0; v <= 8; v++ {
		h.Add(v)
	}
	h.Add(100) // clamps to last bucket
	h.Add(-3)  // clamps to first
	if h.Total() != 11 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(8) != 2 {
		t.Errorf("last bucket = %d, want 2", h.Count(8))
	}
	if h.Count(0) != 2 {
		t.Errorf("first bucket = %d, want 2", h.Count(0))
	}
	if got := h.Fraction(8); math.Abs(got-2.0/11) > 1e-12 {
		t.Errorf("Fraction(8) = %v", got)
	}
	if got := h.CumFraction(8); math.Abs(got-1) > 1e-12 {
		t.Errorf("CumFraction(last) = %v, want 1", got)
	}
	h.Reset()
	if h.Total() != 0 || h.Count(0) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Error("empty mean should be 0")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 {
		t.Errorf("mean = %v", m.Value())
	}
	m.AddN(10, 2)
	if m.N() != 4 || m.Value() != (2+4+20)/4.0 {
		t.Errorf("weighted mean = %v n=%d", m.Value(), m.N())
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
	if got := GeoMean([]float64{-1, 0, 8, 2}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean ignoring non-positive = %v", got)
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Error("MeanOf(nil) != 0")
	}
	if MeanOf([]float64{1, 2, 3}) != 2 {
		t.Error("MeanOf wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRowf("beta", 0.5)
	s := tbl.String()
	if !strings.Contains(s, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "0.500") {
		t.Errorf("missing cells in:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), s)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("x", "a", "b")
	tbl.AddRow("1", "two,three")
	tbl.AddRow("quo\"te", "plain")
	got := tbl.CSV()
	want := "a,b\n1,\"two,three\"\n\"quo\"\"te\",plain\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableSort(t *testing.T) {
	tbl := NewTable("", "k")
	tbl.AddRow("b")
	tbl.AddRow("a")
	tbl.SortRowsBy(0)
	s := tbl.String()
	if strings.Index(s, "a") > strings.Index(s, "b") {
		t.Errorf("rows not sorted:\n%s", s)
	}
}

func TestFormatters(t *testing.T) {
	if FmtPct(0.123) != "12.3%" {
		t.Errorf("FmtPct = %s", FmtPct(0.123))
	}
	if FmtBytes(2048) != "2.00KB" {
		t.Errorf("FmtBytes = %s", FmtBytes(2048))
	}
	if FmtBytes(3*1<<20) != "3.00MB" {
		t.Errorf("FmtBytes = %s", FmtBytes(3*1<<20))
	}
	if FmtBytes(512) != "512B" {
		t.Errorf("FmtBytes = %s", FmtBytes(512))
	}
	if FmtBytes(5*1<<30) != "5.00GB" {
		t.Errorf("FmtBytes = %s", FmtBytes(5*1<<30))
	}
}
