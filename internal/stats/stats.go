// Package stats provides the counters, histograms and table rendering used
// by every simulator component and by the experiment drivers.
//
// Counters are plain int64/float64 wrappers with convenience ratios; they
// are not concurrency-safe because the simulator is single-threaded by
// design (deterministic trace-driven timing).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"bimodal/internal/snapshot"
)

// Ratio returns num/den, or 0 when den is zero. Handy for hit rates over
// possibly-empty streams.
func Ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct returns 100*num/den, or 0 when den is zero.
func Pct(num, den int64) float64 { return 100 * Ratio(num, den) }

// Improvement returns the relative improvement of after over before as a
// fraction: (before-after)/before for "lower is better" metrics. Zero when
// before is zero.
func Improvement(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (before - after) / before
}

// Histogram is a fixed-bucket integer histogram (bucket i counts value i).
// Values beyond the last bucket are clamped into it.
type Histogram struct {
	buckets []int64
	total   int64
}

// NewHistogram creates a histogram with n buckets for values 0..n-1.
func NewHistogram(n int) *Histogram {
	if n <= 0 {
		panic("stats: NewHistogram with non-positive bucket count")
	}
	return &Histogram{buckets: make([]int64, n)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
}

// Count returns the number of observations in bucket i.
func (h *Histogram) Count(i int) int64 { return h.buckets[i] }

// Total returns the total number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Fraction returns the fraction of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 { return Ratio(h.buckets[i], h.total) }

// CumFraction returns the fraction of observations in buckets 0..i.
func (h *Histogram) CumFraction(i int) float64 {
	var c int64
	for j := 0; j <= i && j < len(h.buckets); j++ {
		c += h.buckets[j]
	}
	return Ratio(c, h.total)
}

// SnapshotState implements snapshot.Snapshotter (bucket counts and the
// running total; the bucket count itself is configuration).
func (h *Histogram) SnapshotState(w *snapshot.Writer) {
	w.Tag("hist")
	w.I64s(h.buckets)
	w.I64(h.total)
}

// RestoreState implements snapshot.Snapshotter. h must have been built
// with the same bucket count as the producer.
func (h *Histogram) RestoreState(r *snapshot.Reader) {
	r.Tag("hist")
	r.I64s(h.buckets)
	h.total = r.I64()
}

// Reset clears all buckets.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.total = 0
}

// Mean is an online mean accumulator.
type Mean struct {
	sum float64
	n   int64
}

// Add records one sample.
func (m *Mean) Add(v float64) { m.sum += v; m.n++ }

// AddN records a sample with weight n.
func (m *Mean) AddN(v float64, n int64) { m.sum += v * float64(n); m.n += n }

// Value returns the mean, or 0 with no samples.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// N returns the number of samples.
func (m *Mean) N() int64 { return m.n }

// Sum returns the raw sum.
func (m *Mean) Sum() float64 { return m.sum }

// GeoMean computes the geometric mean of the values, ignoring non-positive
// entries (which would make the geomean undefined).
func GeoMean(vals []float64) float64 {
	s, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// MeanOf returns the arithmetic mean of vals (0 for empty).
func MeanOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Table accumulates rows of strings and renders them with aligned columns,
// suitable for experiment output that mirrors the paper's tables.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row. Cells beyond the header width are permitted.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row where each cell is formatted with fmt.Sprintf from
// the corresponding (format, value) handling of %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	grow := func(row []string) {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	grow(t.header)
	for _, r := range t.rows {
		grow(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", max(total-2, 1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first, cells with
// commas or quotes quoted), for piping experiment output into plotting
// tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortRowsBy sorts the data rows by the given column using string compare.
func (t *Table) SortRowsBy(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		var a, b string
		if col < len(t.rows[i]) {
			a = t.rows[i][col]
		}
		if col < len(t.rows[j]) {
			b = t.rows[j][col]
		}
		return a < b
	})
}

// FmtPct formats a fraction as a percentage string like "12.3%".
func FmtPct(frac float64) string { return fmt.Sprintf("%.1f%%", 100*frac) }

// FmtBytes formats a byte count with a binary suffix.
func FmtBytes(n float64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", n/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", n/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKB", n/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", n)
	}
}
