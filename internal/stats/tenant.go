package stats

// TenantShare is the plain-number view of one tenant's attributed
// traffic (a projection of cpu.TenantResult — plain types keep this
// package free of simulator imports). LatencySum accumulates demand-read
// latencies, so LatencySum/Reads is the tenant's average load latency.
type TenantShare struct {
	Accesses   int64
	Reads      int64
	Hits       int64
	LatencySum int64
}

// HitRate returns the tenant's DRAM-cache hit rate.
func (t TenantShare) HitRate() float64 { return Ratio(t.Hits, t.Accesses) }

// AvgLatency returns the tenant's average demand-read latency in cycles.
func (t TenantShare) AvgLatency() float64 {
	if t.Reads == 0 {
		return 0
	}
	return float64(t.LatencySum) / float64(t.Reads)
}

// TenantSlowdowns computes per-tenant QoS attribution for tenants
// sharing one machine: each tenant's average demand-read latency
// normalized to the best-served tenant's (the minimum average), and the
// mean of those slowdowns — the tenant-level analogue of ANTT, where the
// best-served tenant stands in for the unavailable isolated run. The
// best tenant's slowdown is exactly 1; a tenant with no reads reports 0
// and is excluded from the mean.
func TenantSlowdowns(shares []TenantShare) (slowdowns []float64, antt float64) {
	if len(shares) == 0 {
		return nil, 0
	}
	best := 0.0
	for _, s := range shares {
		if l := s.AvgLatency(); l > 0 && (best == 0 || l < best) {
			best = l
		}
	}
	slowdowns = make([]float64, len(shares))
	if best == 0 {
		return slowdowns, 0
	}
	sum, n := 0.0, 0
	for i, s := range shares {
		if l := s.AvgLatency(); l > 0 {
			slowdowns[i] = l / best
			sum += slowdowns[i]
			n++
		}
	}
	if n == 0 {
		return slowdowns, 0
	}
	return slowdowns, sum / float64(n)
}
