// Benchmark harness: one benchmark per paper table and figure (each runs
// the corresponding experiment driver at reduced scale and reports
// wall-time per regeneration), plus microbenchmarks of the hot simulator
// paths.
//
//	go test -bench=. -benchmem
package bimodal_test

import (
	"context"
	"testing"

	"bimodal/internal/bench"
	"bimodal/internal/experiments"
)

// benchOptions keeps each experiment regeneration small enough to iterate.
// Workers is pinned to 1: with a parallel pool the wall-clock measures host
// scheduling, not simulator work, and regression comparisons drown in
// noise. Serial runs measure exactly the code the microbenchmarks cover.
func benchOptions() experiments.Options {
	return experiments.Options{
		AccessesPerCore: 2_000,
		StreamAccesses:  30_000,
		Seed:            1,
		MaxMixes:        1,
		Workers:         1,
	}
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		if tbl.NumRows() == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig1BlockSizeSweep(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2Utilization(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig3LatencyBreakdown(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig5MRU(b *testing.B)              { benchExperiment(b, "fig5") }
func BenchmarkFig7ANTT(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8aAblation(b *testing.B)        { benchExperiment(b, "fig8a") }
func BenchmarkFig8bHitRate(b *testing.B)         { benchExperiment(b, "fig8b") }
func BenchmarkFig8cLatency(b *testing.B)         { benchExperiment(b, "fig8c") }
func BenchmarkFig9aWastedBW(b *testing.B)        { benchExperiment(b, "fig9a") }
func BenchmarkFig9bMetadataRBH(b *testing.B)     { benchExperiment(b, "fig9b") }
func BenchmarkFig9cWayLocator(b *testing.B)      { benchExperiment(b, "fig9c") }
func BenchmarkFig10SmallFraction(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11Energy(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12Sensitivity(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkTable3WayLocatorStorage(b *testing.B) {
	benchExperiment(b, "table3")
}
func BenchmarkTable5Workloads(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkTable6Prefetch(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkExtMissPredictor(b *testing.B) {
	benchExperiment(b, "ext-misspred")
}
func BenchmarkExtVictimCache(b *testing.B)    { benchExperiment(b, "ext-victim") }
func BenchmarkExtTenantSlowdown(b *testing.B) { benchExperiment(b, "ext-tenant") }
func BenchmarkSweepThreshold(b *testing.B)    { benchExperiment(b, "sweep-threshold") }
func BenchmarkSweepWeight(b *testing.B)       { benchExperiment(b, "sweep-weight") }
func BenchmarkSweepPredictor(b *testing.B)    { benchExperiment(b, "sweep-predictor") }

// --- microbenchmarks of the simulator's hot paths ---
//
// Bodies live in internal/bench, shared with the bmbench regression
// runner: `go test -bench` here and a committed BENCH_<date>.json baseline
// measure exactly the same code. See each case's doc comment there.

func BenchmarkBiModalAccess(b *testing.B)          { bench.Run(b, "BiModalAccess") }
func BenchmarkBiModalAccessMissHeavy(b *testing.B) { bench.Run(b, "BiModalAccessMissHeavy") }
func BenchmarkAlloyAccess(b *testing.B)            { bench.Run(b, "AlloyAccess") }
func BenchmarkCoreCacheAccess(b *testing.B)        { bench.Run(b, "CoreCacheAccess") }
func BenchmarkWayLocatorLookup(b *testing.B)       { bench.Run(b, "WayLocatorLookup") }
func BenchmarkDRAMChannelAccess(b *testing.B)      { bench.Run(b, "DRAMChannelAccess") }
func BenchmarkMemctrlRead(b *testing.B)            { bench.Run(b, "MemctrlRead") }
func BenchmarkTraceGeneration(b *testing.B)        { bench.Run(b, "TraceGeneration") }
func BenchmarkEndToEndMix(b *testing.B)            { bench.Run(b, "EndToEndMix") }
func BenchmarkEndToEndMixPooled(b *testing.B)      { bench.Run(b, "EndToEndMixPooled") }
func BenchmarkSweepColdWarmup(b *testing.B)        { bench.Run(b, "SweepColdWarmup") }
func BenchmarkSweepWarmRestore(b *testing.B)       { bench.Run(b, "SweepWarmRestore") }
func BenchmarkSweepPooled(b *testing.B)            { bench.Run(b, "SweepPooled") }
func BenchmarkTraceNextKVStore(b *testing.B)       { bench.Run(b, "TraceNextKVStore") }
func BenchmarkTraceNextWebserve(b *testing.B)      { bench.Run(b, "TraceNextWebserve") }
func BenchmarkTraceNextScan(b *testing.B)          { bench.Run(b, "TraceNextScan") }
func BenchmarkTraceNextInterleave4(b *testing.B)   { bench.Run(b, "TraceNextInterleave4") }
