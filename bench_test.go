// Benchmark harness: one benchmark per paper table and figure (each runs
// the corresponding experiment driver at reduced scale and reports
// wall-time per regeneration), plus microbenchmarks of the hot simulator
// paths.
//
//	go test -bench=. -benchmem
package bimodal_test

import (
	"context"
	"testing"

	bimodal "bimodal"
	"bimodal/internal/addr"
	"bimodal/internal/core"
	"bimodal/internal/dram"
	"bimodal/internal/dramcache"
	"bimodal/internal/experiments"
	"bimodal/internal/memctrl"
	"bimodal/internal/trace"
	"bimodal/internal/xrand"
)

// benchOptions keeps each experiment regeneration small enough to iterate.
func benchOptions() experiments.Options {
	return experiments.Options{
		AccessesPerCore: 2_000,
		StreamAccesses:  30_000,
		Seed:            1,
		MaxMixes:        1,
	}
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		if tbl.NumRows() == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig1BlockSizeSweep(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2Utilization(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig3LatencyBreakdown(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig5MRU(b *testing.B)              { benchExperiment(b, "fig5") }
func BenchmarkFig7ANTT(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8aAblation(b *testing.B)        { benchExperiment(b, "fig8a") }
func BenchmarkFig8bHitRate(b *testing.B)         { benchExperiment(b, "fig8b") }
func BenchmarkFig8cLatency(b *testing.B)         { benchExperiment(b, "fig8c") }
func BenchmarkFig9aWastedBW(b *testing.B)        { benchExperiment(b, "fig9a") }
func BenchmarkFig9bMetadataRBH(b *testing.B)     { benchExperiment(b, "fig9b") }
func BenchmarkFig9cWayLocator(b *testing.B)      { benchExperiment(b, "fig9c") }
func BenchmarkFig10SmallFraction(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11Energy(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12Sensitivity(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkTable3WayLocatorStorage(b *testing.B) {
	benchExperiment(b, "table3")
}
func BenchmarkTable5Workloads(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkTable6Prefetch(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkExtMissPredictor(b *testing.B) {
	benchExperiment(b, "ext-misspred")
}
func BenchmarkExtVictimCache(b *testing.B) { benchExperiment(b, "ext-victim") }
func BenchmarkSweepThreshold(b *testing.B) { benchExperiment(b, "sweep-threshold") }
func BenchmarkSweepWeight(b *testing.B)    { benchExperiment(b, "sweep-weight") }
func BenchmarkSweepPredictor(b *testing.B) { benchExperiment(b, "sweep-predictor") }

// --- microbenchmarks of the simulator's hot paths ---

// BenchmarkBiModalAccess measures one end-to-end scheme access (functional
// cache + way locator + DRAM timing).
func BenchmarkBiModalAccess(b *testing.B) {
	cfg := dramcache.DefaultConfig(4)
	cfg.CacheBytes = 32 << 20
	s := dramcache.NewBiModal(cfg)
	g := trace.NewSynthetic(trace.MustProfile("soplex"), 0, 1)
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := g.Next()
		now += int64(a.Gap)
		s.Access(dramcache.Request{Addr: a.Addr, Write: a.Write}, now)
	}
}

// BenchmarkAlloyAccess measures the baseline's access path.
func BenchmarkAlloyAccess(b *testing.B) {
	cfg := dramcache.DefaultConfig(4)
	cfg.CacheBytes = 32 << 20
	s := dramcache.NewAlloy(cfg)
	g := trace.NewSynthetic(trace.MustProfile("soplex"), 0, 1)
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := g.Next()
		now += int64(a.Gap)
		s.Access(dramcache.Request{Addr: a.Addr, Write: a.Write}, now)
	}
}

// BenchmarkCoreCacheAccess measures the functional Bi-Modal cache alone.
func BenchmarkCoreCacheAccess(b *testing.B) {
	p := core.DefaultParams(32 << 20)
	c := core.NewCache(p, core.NewWayLocator(14, p.BigBlock))
	g := trace.NewSynthetic(trace.MustProfile("omnetpp"), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := g.Next()
		c.Access(a.Addr, a.Write)
	}
}

// BenchmarkWayLocatorLookup measures the SRAM locator probe.
func BenchmarkWayLocatorLookup(b *testing.B) {
	wl := core.NewWayLocator(14, 512)
	r := xrand.New(1)
	for i := 0; i < 10000; i++ {
		wl.Insert(addr.Phys(r.Uint64n(1<<30))&^63, r.Bool(0.5), r.Intn(18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wl.Lookup(addr.Phys(uint64(i)*512) & (1<<30 - 1))
	}
}

// BenchmarkDRAMChannelAccess measures the bank timing state machine.
func BenchmarkDRAMChannelAccess(b *testing.B) {
	ch := dram.NewChannel(dram.StackedTiming(), 1, 8)
	r := xrand.New(2)
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := addr.Location{Bank: r.Intn(8), Row: r.Uint64n(4096), Column: r.Uint64n(32) * 64}
		now += 20
		ch.Access(dram.OpRead, l, now, 64)
	}
}

// BenchmarkMemctrlRead measures a full controller read (interleave + bank).
func BenchmarkMemctrlRead(b *testing.B) {
	c := memctrl.New(memctrl.StackedConfig(2))
	r := xrand.New(3)
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 20
		c.Read(addr.Phys(r.Uint64n(1<<30))&^63, now, 64)
	}
}

// BenchmarkTraceGeneration measures synthetic stream production.
func BenchmarkTraceGeneration(b *testing.B) {
	g := trace.NewSynthetic(trace.MustProfile("mcf"), 0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkEndToEndMix measures a complete small multiprogrammed run via
// the public facade.
func BenchmarkEndToEndMix(b *testing.B) {
	mix := bimodal.Workload("Q7")
	o := bimodal.Options{AccessesPerCore: 2000, CacheDivisor: 16, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bimodal.RunBiModal(mix, o)
	}
}
