package bimodal_test

import (
	"testing"

	bimodal "bimodal"
)

func facadeOptions() bimodal.Options {
	return bimodal.Options{AccessesPerCore: 3000, CacheDivisor: 16, Seed: 1}
}

func TestWorkloadLookup(t *testing.T) {
	if bimodal.Workload("Q1").Cores() != 4 {
		t.Error("Q1 should have 4 cores")
	}
	ms, err := bimodal.Workloads(8)
	if err != nil || len(ms) != 16 {
		t.Errorf("Workloads(8): %d mixes, err %v", len(ms), err)
	}
	if _, err := bimodal.Workloads(5); err == nil {
		t.Error("Workloads(5) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("Workload should panic on unknown name")
		}
	}()
	bimodal.Workload("nope")
}

func TestRunBiModalFacade(t *testing.T) {
	res := bimodal.RunBiModal(bimodal.Workload("Q13"), facadeOptions())
	if res.Report.Accesses == 0 || res.Report.Scheme != "BiModal" {
		t.Errorf("unexpected result: %+v", res.Report.Scheme)
	}
}

func TestRunSchemeFacade(t *testing.T) {
	res, err := bimodal.RunScheme("alloy", bimodal.Workload("Q13"), facadeOptions())
	if err != nil || res.Report.Scheme != "AlloyCache" {
		t.Errorf("RunScheme: %v %v", res.Report.Scheme, err)
	}
	if _, err := bimodal.RunScheme("bogus", bimodal.Workload("Q13"), facadeOptions()); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestANTTFacade(t *testing.T) {
	antt, err := bimodal.ANTT("bimodal", bimodal.Workload("Q13"), facadeOptions())
	if err != nil || antt <= 0 {
		t.Errorf("ANTT: %v %v", antt, err)
	}
	if _, err := bimodal.ANTT("bogus", bimodal.Workload("Q13"), facadeOptions()); err == nil {
		t.Error("unknown scheme accepted")
	}
	antt2, err := bimodal.ANTT("alloy", bimodal.Workload("Q13"), facadeOptions())
	if err != nil || antt2 <= 0 {
		t.Errorf("alloy ANTT: %v %v", antt2, err)
	}
}

func TestNewBiModalScheme(t *testing.T) {
	s := bimodal.NewBiModalScheme(4)
	if s.Name() != "BiModal" {
		t.Error("wrong scheme name")
	}
	if s.Core().Params().CacheBytes != 128<<20 {
		t.Error("wrong preset size")
	}
}
