package bimodal_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	bimodal "bimodal"
)

func facadeOptions() bimodal.Options {
	return bimodal.Options{AccessesPerCore: 3000, CacheDivisor: 16, Seed: 1}
}

func TestWorkloadLookup(t *testing.T) {
	if bimodal.Workload("Q1").Cores() != 4 {
		t.Error("Q1 should have 4 cores")
	}
	ms, err := bimodal.Workloads(8)
	if err != nil || len(ms) != 16 {
		t.Errorf("Workloads(8): %d mixes, err %v", len(ms), err)
	}
	if _, err := bimodal.Workloads(5); err == nil {
		t.Error("Workloads(5) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("Workload should panic on unknown name")
		}
	}()
	bimodal.Workload("nope")
}

func TestRunBiModalFacade(t *testing.T) {
	res := bimodal.RunBiModal(bimodal.Workload("Q13"), facadeOptions())
	if res.Report.Accesses == 0 || res.Report.Scheme != "BiModal" {
		t.Errorf("unexpected result: %+v", res.Report.Scheme)
	}
}

func TestRunSchemeFacade(t *testing.T) {
	res, err := bimodal.RunScheme("alloy", bimodal.Workload("Q13"), facadeOptions())
	if err != nil || res.Report.Scheme != "AlloyCache" {
		t.Errorf("RunScheme: %v %v", res.Report.Scheme, err)
	}
	if _, err := bimodal.RunScheme("bogus", bimodal.Workload("Q13"), facadeOptions()); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestANTTFacade(t *testing.T) {
	antt, err := bimodal.ANTT("bimodal", bimodal.Workload("Q13"), facadeOptions())
	if err != nil || antt <= 0 {
		t.Errorf("ANTT: %v %v", antt, err)
	}
	if _, err := bimodal.ANTT("bogus", bimodal.Workload("Q13"), facadeOptions()); err == nil {
		t.Error("unknown scheme accepted")
	}
	antt2, err := bimodal.ANTT("alloy", bimodal.Workload("Q13"), facadeOptions())
	if err != nil || antt2 <= 0 {
		t.Errorf("alloy ANTT: %v %v", antt2, err)
	}
}

func TestWorkloadByName(t *testing.T) {
	mix, err := bimodal.WorkloadByName("Q1")
	if err != nil || mix.Cores() != 4 {
		t.Errorf("WorkloadByName(Q1): cores %d, err %v", mix.Cores(), err)
	}
	if _, err := bimodal.WorkloadByName("nope"); err == nil {
		t.Error("WorkloadByName should return an error for unknown names")
	}
}

func TestParseSchemeFacade(t *testing.T) {
	id, err := bimodal.ParseScheme("atcache")
	if err != nil || id != bimodal.SchemeATCache {
		t.Errorf("ParseScheme(atcache) = %v, %v", id, err)
	}
	if _, err := bimodal.ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme accepted an unknown name")
	}
	names := bimodal.SchemeNames()
	if len(names) != 9 {
		t.Errorf("SchemeNames() has %d entries, want 9", len(names))
	}
}

func TestRunSchemeContextFacade(t *testing.T) {
	res, err := bimodal.RunSchemeContext(context.Background(), bimodal.SchemeAlloy,
		bimodal.Workload("Q13"), facadeOptions())
	if err != nil || res.Report.Scheme != "AlloyCache" {
		t.Errorf("RunSchemeContext: %v %v", res.Report.Scheme, err)
	}
	// Context runs match their context-free counterparts exactly.
	plain, err := bimodal.RunScheme("alloy", bimodal.Workload("Q13"), facadeOptions())
	if err != nil {
		t.Fatal(err)
	}
	res.Scheme, plain.Scheme = nil, nil
	if !reflect.DeepEqual(res, plain) {
		t.Error("RunSchemeContext result differs from RunScheme")
	}
}

func TestRunBiModalContextFacade(t *testing.T) {
	mix := bimodal.Workload("Q13")
	res, err := bimodal.RunBiModalContext(context.Background(), mix, facadeOptions())
	if err != nil || res.Report.Scheme != "BiModal" {
		t.Errorf("RunBiModalContext: %v %v", res.Report.Scheme, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := facadeOptions()
	o.AccessesPerCore = 50_000_000
	if _, err := bimodal.RunBiModalContext(ctx, mix, o); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled RunBiModalContext: err = %v, want context.Canceled", err)
	}
}

func TestANTTContextFacade(t *testing.T) {
	mix := bimodal.Workload("Q13")
	o := facadeOptions()
	o.Workers = runtime.NumCPU()
	antt, multi, err := bimodal.ANTTContext(context.Background(), bimodal.SchemeBiModal, mix, o)
	if err != nil || antt <= 0 || multi.Report.Scheme != "BiModal" {
		t.Errorf("ANTTContext: antt %v, scheme %v, err %v", antt, multi.Report.Scheme, err)
	}
	// Parallel standalone fan-out must agree with the serial ANTT facade.
	serial, err := bimodal.ANTT("bimodal", mix, facadeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if antt != serial {
		t.Errorf("parallel ANTT %v != serial %v", antt, serial)
	}
}

func TestNewBiModalScheme(t *testing.T) {
	s := bimodal.NewBiModalScheme(4)
	if s.Name() != "BiModal" {
		t.Error("wrong scheme name")
	}
	if s.Core().Params().CacheBytes != 128<<20 {
		t.Error("wrong preset size")
	}
}
