// Blocksize reproduces the motivation of Figure 1 on two contrasting
// benchmarks: for a streaming program the miss rate roughly halves with
// every block-size doubling, while an irregular pointer-chaser gains much
// less — the tension Bi-Modal caching resolves.
//
//	go run ./examples/blocksize
package main

import (
	"fmt"

	"bimodal/internal/sram"
	"bimodal/internal/stats"
	"bimodal/internal/trace"
)

func main() {
	const cacheBytes = 32 << 20
	const accesses = 500_000
	blockSizes := []uint64{64, 128, 256, 512, 1024, 2048, 4096}

	tbl := stats.NewTable(
		fmt.Sprintf("miss rate vs block size (%s cache, 8-way)", stats.FmtBytes(cacheBytes)),
		"benchmark", "64B", "128B", "256B", "512B", "1KB", "2KB", "4KB")

	for _, bench := range []string{"libquantum", "soplex", "mcf"} {
		row := []string{bench}
		for _, bs := range blockSizes {
			gen := trace.NewSynthetic(trace.MustProfile(bench), 0, 7)
			c := sram.New(sram.Config{SizeBytes: cacheBytes, BlockSize: bs, Assoc: 8})
			for i := 0; i < accesses; i++ {
				a := gen.Next()
				if hit, _ := c.Access(a.Addr, a.Write); !hit {
					c.Insert(a.Addr, a.Write, 0)
				}
			}
			row = append(row, fmt.Sprintf("%.3f", 1-c.HitRate()))
		}
		tbl.AddRow(row...)
	}
	fmt.Print(tbl)
	fmt.Println("\nstreaming benchmarks reward big blocks; pointer-chasers do not —")
	fmt.Println("hence bi-modal block sizing (Section II of the paper).")
}
