// Adaptivity demonstrates the cache-wide (X_glob, Y_glob) state machine of
// Section III-B4: a workload that alternates between a streaming phase and
// a sparse pointer-chasing phase drives the global state between all-big
// (4,0) and small-heavy (2,16), and the per-set states follow.
//
//	go run ./examples/adaptivity
package main

import (
	"fmt"

	"bimodal/internal/core"
	"bimodal/internal/stats"
	"bimodal/internal/trace"
)

func main() {
	p := core.DefaultParams(16 << 20)
	p.AdaptInterval = 25_000
	p.SampleShift = 2
	p.PredictorBits = 10
	cache := core.NewCache(p, core.NewWayLocator(12, p.BigBlock))

	// The two phases touch different regions, as when a program moves to a
	// freshly allocated data structure between phases.
	streaming := trace.NewSynthetic(trace.MustProfile("libquantum"), 0, 3)
	sparse := trace.NewSynthetic(trace.MustProfile("mcf"), 1<<31, 4)

	tbl := stats.NewTable("global state across phases",
		"phase", "accesses", "state after", "small fraction", "hit rate")

	const phaseLen = 400_000
	run := func(label string, gen trace.Generator) {
		before := cache.Stats
		for i := 0; i < phaseLen; i++ {
			a := gen.Next()
			cache.Access(a.Addr, a.Write)
		}
		delta := cache.Stats
		delta.Accesses -= before.Accesses
		delta.Hits -= before.Hits
		delta.HitsSmall -= before.HitsSmall
		delta.MissPredSml -= before.MissPredSml
		delta.FallbackBig -= before.FallbackBig
		tbl.AddRow(label, fmt.Sprint(phaseLen), cache.GlobalState().String(),
			stats.FmtPct(delta.SmallFraction()), stats.FmtPct(delta.HitRate()))
	}

	run("streaming #1", streaming)
	run("sparse #1", sparse)
	run("sparse #2", sparse)
	run("streaming #2", streaming)
	run("streaming #3", streaming)

	fmt.Print(tbl)
	fmt.Println("\nthe demand counters move the global state toward small blocks in")
	fmt.Println("sparse phases; when streaming returns, the leader sets re-train the")
	fmt.Println("size predictor and the state drifts back toward big blocks.")
}
