// Waylocator studies the SRAM way locator in isolation: storage cost and
// lookup latency per Table III, and the hit rate it achieves on a real
// access stream at each table size (Figure 9c's sweep).
//
//	go run ./examples/waylocator
package main

import (
	"fmt"

	"bimodal/internal/core"
	"bimodal/internal/stats"
	"bimodal/internal/trace"
)

func main() {
	// Table III: storage and latency at each K for the three cache scales.
	cost := stats.NewTable("way locator storage (Table III)",
		"K", "entries", "4GB mem", "8GB mem", "16GB mem", "latency")
	for _, k := range []uint{10, 12, 14, 16} {
		kb32 := core.StorageKB(k, 32)
		cost.AddRow(
			fmt.Sprint(k),
			fmt.Sprint(2<<k),
			fmt.Sprintf("%.1fKB", kb32),
			fmt.Sprintf("%.1fKB", core.StorageKB(k, 33)),
			fmt.Sprintf("%.1fKB", core.StorageKB(k, 34)),
			fmt.Sprintf("%d cycle(s)", core.LatencyCycles(kb32)))
	}
	fmt.Print(cost)

	// Hit rate vs K on a mixed workload, driving the full bi-modal cache
	// functionally (every access exercises locator insert/lookup).
	fmt.Println()
	hit := stats.NewTable("way locator hit rate vs K (soplex stream)", "K", "hit rate")
	for _, k := range []uint{10, 12, 14, 16} {
		p := core.DefaultParams(32 << 20)
		p.AdaptInterval = 50_000
		wl := core.NewWayLocator(k, p.BigBlock)
		c := core.NewCache(p, wl)
		gen := trace.NewSynthetic(trace.MustProfile("soplex"), 0, 5)
		for i := 0; i < 400_000; i++ {
			a := gen.Next()
			c.Access(a.Addr, a.Write)
		}
		hit.AddRow(fmt.Sprint(k), stats.FmtPct(wl.HitRate()))
	}
	fmt.Print(hit)
	fmt.Println("\nK=14 is the paper's sweet spot: ~80KB of SRAM, single-cycle lookup.")
}
