// Quickstart: build a Bi-Modal DRAM cache system, run a quad-core
// multiprogrammed workload through it, and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"bimodal/internal/dramcache"
	"bimodal/internal/sim"
	"bimodal/internal/stats"
	"bimodal/internal/workloads"
)

func main() {
	// Q7 is one of the paper's irregular mixes: mcf, art, twolf, omnetpp.
	mix := workloads.MustByName("Q7")

	opts := sim.Options{
		AccessesPerCore: 100_000,
		CacheDivisor:    4, // scale capacity to the replay length
		Seed:            1,
	}

	// Run the paper's proposal and its baseline side by side.
	bimodal := sim.Run(mix, sim.BiModalFactory(mix.Cores(), opts), opts)
	alloy := sim.Run(mix, mustFactory("alloy"), opts)

	fmt.Printf("workload %s (%d cores)\n\n", mix.Name, mix.Cores())
	for _, res := range []sim.RunResult{bimodal, alloy} {
		r := res.Report
		fmt.Printf("%-12s hit rate %-6s  avg latency %6.1f cycles  off-chip %-9s  wasted %s\n",
			r.Scheme,
			stats.FmtPct(r.HitRate()),
			r.AvgLatency(),
			stats.FmtBytes(float64(r.OffchipBytes())),
			stats.FmtBytes(float64(r.WastedFetchBytes)))
	}

	// The Bi-Modal specifics: way locator and adaptive block sizing.
	bm := bimodal.Scheme.(*dramcache.BiModal)
	r := bimodal.Report
	fmt.Printf("\nway locator hit rate: %s\n", stats.FmtPct(r.LocatorHitRate()))
	fmt.Printf("small-block access fraction: %s\n", stats.FmtPct(r.SmallFraction))
	fmt.Printf("cache-wide state (X_glob, Y_glob): %v\n", bm.Core().GlobalState())
}

func mustFactory(name string) sim.Factory {
	f, err := sim.SchemeFactory(name)
	if err != nil {
		panic(err)
	}
	return f
}
