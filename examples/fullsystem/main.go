// Fullsystem demonstrates the complete memory hierarchy of Table IV: cores
// issue L2-level accesses, a 4MB shared LLSC filters them, and only the
// misses and dirty writebacks reach the Bi-Modal DRAM cache — exactly the
// traffic the paper's trace-driven studies replay.
//
//	go run ./examples/fullsystem
package main

import (
	"fmt"

	"bimodal/internal/cpu"
	"bimodal/internal/dramcache"
	"bimodal/internal/stats"
	"bimodal/internal/trace"
	"bimodal/internal/workloads"
)

func main() {
	mix := workloads.MustByName("Q11") // astar, omnetpp, gcc, sphinx3

	// Build the raw per-core streams, then interpose the LLSC. The raw
	// streams model L2-level traffic: scale the profile gaps down (the
	// LLSC absorbs most of the rate, restoring DRAM-cache-level gaps).
	var gens []trace.Generator
	var filters []*trace.LLSCFilter
	for i, bench := range mix.Benchmarks {
		p := trace.MustProfile(bench)
		p.GapMean = max(p.GapMean/10, 1)
		raw := trace.NewSynthetic(p, workloads.CoreBase(i), uint64(i)+1)
		f := trace.NewLLSCFilter(raw, 1<<20, 8, uint64(i)+1) // 1MB LLSC slice per core
		filters = append(filters, f)
		gens = append(gens, f)
	}

	cfg := dramcache.DefaultConfig(mix.Cores())
	cfg.CacheBytes = 32 << 20
	scheme := dramcache.NewBiModal(cfg)
	engine := cpu.NewEngine(scheme, gens, cpu.DefaultCoreConfig(), nil)
	per := engine.RunMeasured(50_000, 50_000)

	fmt.Println("per-core hierarchy behaviour:")
	tbl := stats.NewTable("", "core", "benchmark", "LLSC miss rate", "DRAM$ hit rate", "IPC")
	for i, c := range per {
		tbl.AddRow(fmt.Sprint(c.Core), mix.Benchmarks[i],
			stats.FmtPct(filters[i].MissRate()),
			stats.FmtPct(stats.Ratio(c.Hits, c.Accesses)),
			fmt.Sprintf("%.3f", c.IPC()))
	}
	fmt.Print(tbl)

	r := scheme.Report()
	fmt.Printf("\nDRAM cache: hit rate %s, avg latency %.1f cycles, way locator %s\n",
		stats.FmtPct(r.HitRate()), r.AvgLatency(), stats.FmtPct(r.LocatorHitRate()))
	fmt.Printf("off-chip traffic: %s read, %s written (writebacks from the LLSC\n",
		stats.FmtBytes(float64(r.OffchipReadBytes)), stats.FmtBytes(float64(r.OffchipWriteBytes)))
	fmt.Println("and from dirty DRAM-cache evictions at 64B granularity)")
}
